//! A minimal, dependency-free Rust lexer.
//!
//! The lint rules only need a *raw token stream* — identifiers, literals,
//! punctuation — with line/column positions; no parse tree. The lexer
//! therefore handles exactly the lexical grammar that matters for not
//! mis-reading source text: line and (nested) block comments, cooked and
//! raw strings, byte strings, char literals vs. lifetimes, and numeric
//! literals with underscores, prefixes, suffixes and exponents.
//! Everything else is a one-character punctuation token (`::` is fused,
//! because path matching is the one multi-character pattern the rules
//! use constantly).

use std::fmt;

/// The coarse classification the rules match on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `use`, `fn`, …).
    Ident,
    /// Lifetime (`'a`) — kept distinct so `'a` never looks like a char.
    Lifetime,
    /// Integer literal (`42`, `0xFACE`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e-3`, `1f64`).
    Float,
    /// String literal of any flavour (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// Punctuation: a single character, except the fused `::`.
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
    /// Byte offset of the token's first character in the source. The
    /// token's span is `offset .. offset + text.len()` — `text` is the
    /// exact source text, so its byte length is the span length. The
    /// autofix engine rewrites files through these spans.
    pub offset: usize,
}

/// A comment, preserved as side data rather than a token.
///
/// Rules never see comments in the token stream (so `// HashMap` cannot
/// fire D001), but the allow mechanism and the stale-allow rule (D009)
/// need them with exact spans: an `lcakp-lint: allow(…)` directive only
/// counts when it sits in a *real* comment, never inside a string
/// literal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Full comment text including the `//` / `/* … */` delimiters.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based column (in characters).
    pub col: u32,
    /// Byte offset of the comment's first character.
    pub offset: usize,
}

/// Lexing failure — the only unrecoverable states are unterminated
/// delimited tokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LexError {
    /// A `"…"` or `r#"…"#` string never closed.
    UnterminatedString {
        /// Line the string opened on.
        line: u32,
    },
    /// A `/* … */` comment never closed.
    UnterminatedComment {
        /// Line the comment opened on.
        line: u32,
    },
    /// A `'…'` char literal never closed.
    UnterminatedChar {
        /// Line the char literal opened on.
        line: u32,
    },
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LexError::UnterminatedString { line } => {
                write!(f, "unterminated string literal starting on line {line}")
            }
            LexError::UnterminatedComment { line } => {
                write!(f, "unterminated block comment starting on line {line}")
            }
            LexError::UnterminatedChar { line } => {
                write!(f, "unterminated char literal starting on line {line}")
            }
        }
    }
}

impl std::error::Error for LexError {}

struct Cursor<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    byte: usize,
    src: std::marker::PhantomData<&'a str>,
}

impl Cursor<'_> {
    fn new(src: &str) -> Self {
        Cursor {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            byte: 0,
            src: std::marker::PhantomData,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        self.byte += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes `src`, skipping whitespace and comments.
///
/// # Errors
///
/// Returns a [`LexError`] for unterminated strings, block comments or
/// char literals; every other byte sequence lexes (unknown symbols
/// become one-character [`TokenKind::Punct`] tokens).
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    tokenize_with_comments(src).map(|(tokens, _)| tokens)
}

/// Tokenizes `src`, additionally returning every comment with its exact
/// span — the input for the allow mechanism and the stale-allow rule.
///
/// # Errors
///
/// Same as [`tokenize`].
pub fn tokenize_with_comments(src: &str) -> Result<(Vec<Token>, Vec<Comment>), LexError> {
    let mut cur = Cursor::new(src);
    let mut tokens = Vec::new();
    let mut comments = Vec::new();

    while let Some(c) = cur.peek(0) {
        let (line, col, offset) = (cur.line, cur.col, cur.byte);

        // Whitespace.
        if c.is_whitespace() {
            cur.bump();
            continue;
        }

        // Comments.
        if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(next) = cur.peek(0) {
                if next == '\n' {
                    break;
                }
                text.push(cur.bump().expect("peeked"));
            }
            comments.push(Comment {
                text,
                line,
                col,
                offset,
            });
            continue;
        }
        if c == '/' && cur.peek(1) == Some('*') {
            let mut text = String::new();
            text.push(cur.bump().expect("peeked"));
            text.push(cur.bump().expect("peeked"));
            let mut depth = 1usize;
            loop {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        text.push(cur.bump().expect("peeked"));
                        text.push(cur.bump().expect("peeked"));
                        depth += 1;
                    }
                    (Some('*'), Some('/')) => {
                        text.push(cur.bump().expect("peeked"));
                        text.push(cur.bump().expect("peeked"));
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    (Some(_), _) => {
                        text.push(cur.bump().expect("peeked"));
                    }
                    (None, _) => return Err(LexError::UnterminatedComment { line }),
                }
            }
            comments.push(Comment {
                text,
                line,
                col,
                offset,
            });
            continue;
        }

        // Raw strings and byte strings: r"…", r#"…"#, b"…", br#"…"#, b'…'.
        if c == 'r' || c == 'b' {
            let mut ahead = 1;
            if c == 'b' && cur.peek(1) == Some('r') {
                ahead = 2;
            }
            let mut hashes = 0usize;
            while cur.peek(ahead + hashes) == Some('#') {
                hashes += 1;
            }
            let raw = c == 'r' || (c == 'b' && cur.peek(1) == Some('r'));
            if raw && cur.peek(ahead + hashes) == Some('"') {
                let mut text = String::new();
                for _ in 0..(ahead + hashes + 1) {
                    text.push(cur.bump().expect("peeked"));
                }
                loop {
                    match cur.bump() {
                        Some('"') => {
                            text.push('"');
                            let mut closing = 0usize;
                            while closing < hashes && cur.peek(0) == Some('#') {
                                text.push(cur.bump().expect("peeked"));
                                closing += 1;
                            }
                            if closing == hashes {
                                break;
                            }
                        }
                        Some(other) => text.push(other),
                        None => return Err(LexError::UnterminatedString { line }),
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                    col,
                    offset,
                });
                continue;
            }
            if c == 'b' && cur.peek(1) == Some('"') {
                cur.bump(); // b
                let text = lex_cooked_string(&mut cur, line)?;
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: format!("b{text}"),
                    line,
                    col,
                    offset,
                });
                continue;
            }
            if c == 'b' && cur.peek(1) == Some('\'') {
                cur.bump(); // b
                let text = lex_char(&mut cur, line)?;
                tokens.push(Token {
                    kind: TokenKind::Char,
                    text: format!("b{text}"),
                    line,
                    col,
                    offset,
                });
                continue;
            }
            // Fall through: plain identifier starting with r/b.
        }

        // Cooked string.
        if c == '"' {
            let text = lex_cooked_string(&mut cur, line)?;
            tokens.push(Token {
                kind: TokenKind::Str,
                text,
                line,
                col,
                offset,
            });
            continue;
        }

        // Char literal vs. lifetime.
        if c == '\'' {
            let next = cur.peek(1);
            let is_char = match next {
                Some('\\') => true,
                Some(n) if is_ident_start(n) => cur.peek(2) == Some('\''),
                Some(_) => true, // 'x' for non-ident chars like '+' or '0'
                None => return Err(LexError::UnterminatedChar { line }),
            };
            if is_char {
                let text = lex_char(&mut cur, line)?;
                tokens.push(Token {
                    kind: TokenKind::Char,
                    text,
                    line,
                    col,
                    offset,
                });
            } else {
                let mut text = String::new();
                text.push(cur.bump().expect("peeked")); // '
                while let Some(n) = cur.peek(0) {
                    if is_ident_continue(n) {
                        text.push(cur.bump().expect("peeked"));
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Lifetime,
                    text,
                    line,
                    col,
                    offset,
                });
            }
            continue;
        }

        // Numbers.
        if c.is_ascii_digit() {
            let mut text = String::new();
            let mut kind = TokenKind::Int;
            text.push(cur.bump().expect("peeked"));
            let radix_prefix =
                text == "0" && matches!(cur.peek(0), Some('x') | Some('o') | Some('b') | Some('X'));
            if radix_prefix {
                text.push(cur.bump().expect("peeked"));
                while let Some(n) = cur.peek(0) {
                    if n.is_ascii_alphanumeric() || n == '_' {
                        text.push(cur.bump().expect("peeked"));
                    } else {
                        break;
                    }
                }
            } else {
                while let Some(n) = cur.peek(0) {
                    if n.is_ascii_digit() || n == '_' {
                        text.push(cur.bump().expect("peeked"));
                    } else {
                        break;
                    }
                }
                // Fractional part: `1.0` is a float, `1..` a range, and
                // `1.max(2)` a method call on an integer.
                if cur.peek(0) == Some('.') {
                    let after = cur.peek(1);
                    let fractional = match after {
                        Some('.') => false,
                        Some(n) if is_ident_start(n) => false,
                        _ => true,
                    };
                    if fractional {
                        kind = TokenKind::Float;
                        text.push(cur.bump().expect("peeked"));
                        while let Some(n) = cur.peek(0) {
                            if n.is_ascii_digit() || n == '_' {
                                text.push(cur.bump().expect("peeked"));
                            } else {
                                break;
                            }
                        }
                    }
                }
                // Exponent.
                if matches!(cur.peek(0), Some('e') | Some('E')) {
                    let sign = matches!(cur.peek(1), Some('+') | Some('-'));
                    let digit_at = if sign { 2 } else { 1 };
                    if matches!(cur.peek(digit_at), Some(d) if d.is_ascii_digit()) {
                        kind = TokenKind::Float;
                        text.push(cur.bump().expect("peeked"));
                        if sign {
                            text.push(cur.bump().expect("peeked"));
                        }
                        while let Some(n) = cur.peek(0) {
                            if n.is_ascii_digit() || n == '_' {
                                text.push(cur.bump().expect("peeked"));
                            } else {
                                break;
                            }
                        }
                    }
                }
                // Suffix (u64, f32, usize, …).
                if matches!(cur.peek(0), Some(n) if is_ident_start(n)) {
                    let mut suffix = String::new();
                    while let Some(n) = cur.peek(0) {
                        if is_ident_continue(n) {
                            suffix.push(cur.bump().expect("peeked"));
                        } else {
                            break;
                        }
                    }
                    if suffix.starts_with('f') {
                        kind = TokenKind::Float;
                    }
                    text.push_str(&suffix);
                }
            }
            tokens.push(Token {
                kind,
                text,
                line,
                col,
                offset,
            });
            continue;
        }

        // Identifiers and keywords.
        if is_ident_start(c) {
            let mut text = String::new();
            while let Some(n) = cur.peek(0) {
                if is_ident_continue(n) {
                    text.push(cur.bump().expect("peeked"));
                } else {
                    break;
                }
            }
            tokens.push(Token {
                kind: TokenKind::Ident,
                text,
                line,
                col,
                offset,
            });
            continue;
        }

        // Fused `::`, everything else one character.
        if c == ':' && cur.peek(1) == Some(':') {
            cur.bump();
            cur.bump();
            tokens.push(Token {
                kind: TokenKind::Punct,
                text: "::".to_string(),
                line,
                col,
                offset,
            });
            continue;
        }
        cur.bump();
        tokens.push(Token {
            kind: TokenKind::Punct,
            text: c.to_string(),
            line,
            col,
            offset,
        });
    }

    Ok((tokens, comments))
}

/// The `&str` value of a string-literal token's source text, if it is a
/// plain or raw (non-byte) string: `"a\"b"` → `a"b`, `r#"x"#` → `x`.
/// Byte strings (`b"…"`, `br"…"`) and non-string tokens return `None` —
/// they cannot be a `Seed::derive` domain label.
pub fn str_literal_value(text: &str) -> Option<String> {
    if let Some(rest) = text.strip_prefix('r') {
        let trimmed = rest.trim_start_matches('#');
        let hashes = rest.len() - trimmed.len();
        let body = trimmed.strip_prefix('"')?;
        let body = body.strip_suffix(&format!("\"{}", "#".repeat(hashes)))?;
        return Some(body.to_string());
    }
    if let Some(body) = text.strip_prefix('"') {
        let body = body.strip_suffix('"')?;
        let mut out = String::with_capacity(body.len());
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some('r') => out.push('\r'),
                    Some('0') => out.push('\0'),
                    Some(other) => out.push(other),
                    None => return None,
                }
            } else {
                out.push(c);
            }
        }
        return Some(out);
    }
    None
}

fn lex_cooked_string(cur: &mut Cursor<'_>, line: u32) -> Result<String, LexError> {
    let mut text = String::new();
    text.push(cur.bump().expect("peeked")); // opening quote
    loop {
        match cur.bump() {
            Some('\\') => {
                text.push('\\');
                if let Some(escaped) = cur.bump() {
                    text.push(escaped);
                } else {
                    return Err(LexError::UnterminatedString { line });
                }
            }
            Some('"') => {
                text.push('"');
                return Ok(text);
            }
            Some(other) => text.push(other),
            None => return Err(LexError::UnterminatedString { line }),
        }
    }
}

fn lex_char(cur: &mut Cursor<'_>, line: u32) -> Result<String, LexError> {
    let mut text = String::new();
    text.push(cur.bump().expect("peeked")); // opening '
    loop {
        match cur.bump() {
            Some('\\') => {
                text.push('\\');
                if let Some(escaped) = cur.bump() {
                    text.push(escaped);
                } else {
                    return Err(LexError::UnterminatedChar { line });
                }
            }
            Some('\'') => {
                text.push('\'');
                return Ok(text);
            }
            Some(other) => text.push(other),
            None => return Err(LexError::UnterminatedChar { line }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .unwrap()
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a // x\n/* b /* nested */ */ c"),
            vec![
                (TokenKind::Ident, "a".into()),
                (TokenKind::Ident, "c".into())
            ]
        );
    }

    #[test]
    fn strings_and_raw_strings() {
        let toks = kinds(r####"let s = r#"raw "inner" HashMap"# ; "esc \" q""####);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("inner")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("esc")));
        // Identifiers inside strings never surface as Ident tokens.
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "HashMap"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            2
        );
    }

    #[test]
    fn lifetimes_and_loop_labels_never_unterminated() {
        // Every form a tick takes outside a char literal: declaration
        // position, reference types, `'static`, loop labels (declared
        // and targeted), and a lifetime as the final token. None may
        // error as an unterminated char literal.
        let cases = [
            "fn f<'a, 'b: 'a>(x: &'a str, y: &'b [u8]) {}",
            "static S: &'static str = \"s\";",
            "'outer: for _ in 0..3 { break 'outer; }",
            "'l: loop { continue 'l }",
            "impl<'de> Visitor<'de> for V<'de> {}",
            "type T = dyn Fn() + 'static",
            "let r: &'_ u8 = &0; r",
            "x: &'a", // lifetime as the very last token (EOF after ident)
        ];
        for src in cases {
            let toks = tokenize(src).unwrap_or_else(|e| panic!("{src:?} failed to lex: {e}"));
            assert!(
                toks.iter().any(|t| t.kind == TokenKind::Lifetime),
                "{src:?} lexed no lifetime token"
            );
            assert!(
                !toks.iter().any(|t| t.kind == TokenKind::Char),
                "{src:?} mis-lexed a lifetime as a char literal"
            );
        }
        // Char literals that look adjacent to the lifetime forms stay chars.
        let chars = tokenize(r"let (a, b, c) = ('a', '\'', 'é');").expect("chars lex");
        assert_eq!(
            chars.iter().filter(|t| t.kind == TokenKind::Char).count(),
            3
        );
        // A genuinely bare tick is still an error, not a silent token.
        assert!(tokenize("let x = '").is_err());
    }

    #[test]
    fn numbers() {
        let toks = kinds("0xFACE 1_000u64 1.5 2e-3 1f64 0..n 3.max(4)");
        let ints: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Int)
            .map(|(_, t)| t.as_str())
            .collect();
        let floats: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ints, vec!["0xFACE", "1_000u64", "0", "3", "4"]);
        assert_eq!(floats, vec!["1.5", "2e-3", "1f64"]);
    }

    #[test]
    fn double_colon_is_fused() {
        let toks = kinds("std::env::args");
        assert_eq!(
            toks.iter().filter(|(_, t)| t == "::").count(),
            2,
            "{toks:?}"
        );
    }

    #[test]
    fn positions_are_one_based() {
        let toks = tokenize("a\n  b").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(
            tokenize("\"oops"),
            Err(LexError::UnterminatedString { line: 1 })
        ));
    }

    #[test]
    fn offsets_are_byte_accurate_spans() {
        let src = "let s = \"é\"; x";
        let tokens = tokenize(src).unwrap();
        for token in &tokens {
            assert_eq!(
                &src[token.offset..token.offset + token.text.len()],
                token.text,
                "token span must slice back to its text"
            );
        }
    }

    #[test]
    fn raw_string_with_hashes_hides_labels_and_allow_comments() {
        let src = r####"let s = r#"seed.derive("phantom", 0) // lcakp-lint: allow(D001) reason="no""#;"####;
        let (tokens, comments) = tokenize_with_comments(src).unwrap();
        assert!(comments.is_empty(), "{comments:?}");
        assert!(
            !tokens
                .iter()
                .any(|t| t.kind == TokenKind::Ident && t.text == "derive"),
            "derive inside a raw string must stay a string, not tokens"
        );
        assert_eq!(
            tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            1
        );
    }

    #[test]
    fn byte_string_is_not_scanned_for_directives() {
        let src = "let b = b\"lcakp-lint: allow(D005) reason=\\\"in a byte string\\\"\";";
        let (tokens, comments) = tokenize_with_comments(src).unwrap();
        assert!(comments.is_empty(), "{comments:?}");
        assert!(tokens
            .iter()
            .any(|t| t.kind == TokenKind::Str && t.text.starts_with("b\"")));
        assert!(!tokens.iter().any(|t| t.text == "allow"));
    }

    #[test]
    fn nested_block_comments_are_collected_whole() {
        let src = "a /* outer /* inner */ still outer */ b // tail";
        let (tokens, comments) = tokenize_with_comments(src).unwrap();
        assert_eq!(tokens.len(), 2);
        assert_eq!(comments.len(), 2);
        assert_eq!(comments[0].text, "/* outer /* inner */ still outer */");
        assert_eq!(comments[1].text, "// tail");
        let src2 = "x /* a /* b */ c */ y";
        assert_eq!(
            &src2[comments_of(src2)[0].offset..][..comments_of(src2)[0].text.len()],
            "/* a /* b */ c */"
        );
    }

    fn comments_of(src: &str) -> Vec<Comment> {
        tokenize_with_comments(src).unwrap().1
    }

    #[test]
    fn comment_spans_slice_back_to_their_text() {
        let src = "fn f() {} // trailing\n/* block\nspanning */ let x = 1;\n";
        for comment in comments_of(src) {
            assert_eq!(
                &src[comment.offset..comment.offset + comment.text.len()],
                comment.text
            );
        }
    }
}
