//! The span-based autofix engine behind `lcakp-lint fix`.
//!
//! Fixes are planned as byte-span edits against the exact source text
//! (token `offset` + `text.len()` spans, so no re-lexing drift), applied
//! in a single descending-offset pass, and validated to be a fixed
//! point: re-linting the fixed tree plans zero further edits. Three
//! rules are mechanically fixable:
//!
//! * **D001** — `HashMap`/`HashSet` → `BTreeMap`/`BTreeSet`, including
//!   the `use std::collections::…` import (each flagged identifier
//!   token is renamed in place).
//! * **D008** — a non-conforming literal domain label is rewritten to
//!   the canonical suggestion printed in the diagnostic (the same
//!   [`label_suggestions`] map, so fix and message always agree).
//!   Labels routed through a `const` are reported but not auto-fixed —
//!   renaming the const's value could change other call sites.
//! * **D009** — a stale allow directive (every listed rule id stale) is
//!   removed outright; a directive alone on its line takes the line
//!   with it.
//! * **D014** — an unbounded hot-path loop gets a TODO-reasoned
//!   `loop-bound` skeleton inserted above it. `TODO` parses as an
//!   ordinary symbol, so the insertion converges (no second-pass
//!   D014) while leaving an unmissable marker — and an unmistakably
//!   wrong certificate symbol — for a human to replace with the real
//!   bound.
//!
//! Sites suppressed by a well-formed allow are never edited: the allow
//! is the reviewed decision, the fixer does not overrule it.

use crate::engine::{allow_state, stale_allows, AllowState, EngineError, Workspace};
use crate::rules::{label_suggestions, rule_by_id, Check};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// One byte-span replacement within a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edit {
    /// Byte offset of the span's first byte.
    pub offset: usize,
    /// Byte length of the replaced span.
    pub len: usize,
    /// Replacement text (empty = deletion).
    pub replacement: String,
    /// The rule this edit fixes.
    pub rule: &'static str,
}

/// All planned edits for one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileFix {
    /// The file's diagnostic path (workspace-relative when walked).
    pub path: PathBuf,
    /// Non-overlapping edits, sorted by ascending offset.
    pub edits: Vec<Edit>,
}

/// Plans every mechanical fix for the workspace: one [`FileFix`] per
/// file that has at least one applicable edit, sorted by path.
pub fn plan_fixes(ws: &Workspace) -> Vec<FileFix> {
    let mut fixes: Vec<FileFix> = Vec::new();
    let mut push = |path: &Path, edit: Edit| match fixes.iter_mut().find(|fix| fix.path == path) {
        Some(fix) => fix.edits.push(edit),
        None => fixes.push(FileFix {
            path: path.to_path_buf(),
            edits: vec![edit],
        }),
    };

    // D001: rename each flagged hash-container identifier token.
    if let Some(rule) = rule_by_id("D001") {
        if let Check::File(check) = rule.check {
            for ctx in &ws.ctxs {
                if !(rule.applies)(&ctx.crate_name) {
                    continue;
                }
                for finding in check(ctx) {
                    if ctx.is_test_line(finding.line)
                        || allow_state(ctx, finding.line, "D001") == AllowState::Suppressed
                    {
                        continue;
                    }
                    let Some(token) = ctx.tokens.iter().find(|t| {
                        t.line == finding.line
                            && t.col == finding.col
                            && matches!(t.text.as_str(), "HashMap" | "HashSet")
                    }) else {
                        continue;
                    };
                    push(
                        &ctx.path,
                        Edit {
                            offset: token.offset,
                            len: token.text.len(),
                            replacement: format!("BTree{}", &token.text[4..]),
                            rule: "D001",
                        },
                    );
                }
            }
        }
    }

    // D008: rewrite non-conforming literal labels to their canonical
    // suggestion. Only literal labels carry a span; const-routed labels
    // stay manual.
    let suggestions = label_suggestions(ws);
    for site in &ws.graph.derives {
        let Some((offset, len)) = site.label_span else {
            continue;
        };
        let Some(suggested) = suggestions.get(&(site.path.clone(), site.line, site.col)) else {
            continue;
        };
        let path = PathBuf::from(&site.path);
        let Some(ctx) = ws.ctx_for(&path) else {
            continue;
        };
        if allow_state(ctx, site.line, "D008") == AllowState::Suppressed {
            continue;
        }
        push(
            &ctx.path.clone(),
            Edit {
                offset,
                len,
                replacement: format!("\"{suggested}\""),
                rule: "D008",
            },
        );
    }

    // D009: remove directives whose every listed id is stale.
    for stale in stale_allows(ws) {
        let ctx = &ws.ctxs[stale.ctx_index];
        let entry = &ctx.allows[stale.entry_index];
        let fully_stale = entry.ids.iter().all(|id| stale.stale_ids.contains(id));
        if !fully_stale || allow_state(ctx, entry.line, "D009") == AllowState::Suppressed {
            continue;
        }
        let (offset, len) = allow_removal_span(&ctx.src, entry.offset, entry.len);
        push(
            &ctx.path.clone(),
            Edit {
                offset,
                len,
                replacement: String::new(),
                rule: "D009",
            },
        );
    }

    // D014: insert a TODO-reasoned loop-bound skeleton above each
    // flagged loop, preserving the loop's indentation.
    for diagnostic in &ws.budget().d014 {
        let Some(ctx) = ws.ctx_for(&diagnostic.path) else {
            continue;
        };
        let finding = &diagnostic.finding;
        if allow_state(ctx, finding.line, "D014") == AllowState::Suppressed {
            continue;
        }
        let Some(keyword) = ctx
            .tokens
            .iter()
            .find(|t| t.line == finding.line && t.col == finding.col)
        else {
            continue;
        };
        let line_start = ctx.src[..keyword.offset]
            .rfind('\n')
            .map(|i| i + 1)
            .unwrap_or(0);
        let indent = &ctx.src[line_start..keyword.offset];
        if !indent.chars().all(char::is_whitespace) {
            // The loop keyword trails other code on its line; an
            // inserted comment line would not anchor to it.
            continue;
        }
        push(
            &ctx.path.clone(),
            Edit {
                offset: line_start,
                len: 0,
                replacement: format!(
                    "{indent}// lcakp-lint: loop-bound(TODO) \
                     reason=\"TODO: why this loop is bounded\"\n"
                ),
                rule: "D014",
            },
        );
    }

    for fix in &mut fixes {
        fix.edits.sort_by_key(|edit| edit.offset);
        // Drop any later edit overlapping an earlier one — spans come
        // from disjoint tokens/comments, so this is belt-and-braces.
        let mut end = 0usize;
        fix.edits.retain(|edit| {
            let keep = edit.offset >= end;
            if keep {
                end = edit.offset + edit.len;
            }
            keep
        });
    }
    fixes.sort_by(|a, b| a.path.cmp(&b.path));
    fixes
}

/// The byte span to delete for a stale allow comment at
/// `offset..offset + len`: the whole line (including its newline) when
/// the comment is alone on it, otherwise the comment plus the
/// whitespace separating it from the code it trails.
fn allow_removal_span(src: &str, offset: usize, len: usize) -> (usize, usize) {
    let line_start = src[..offset].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let before = &src[line_start..offset];
    let end = offset + len;
    let at_line_end = src[end..].starts_with('\n') || end == src.len();
    if before.chars().all(char::is_whitespace) && at_line_end {
        let line_end = if src[end..].starts_with('\n') {
            end + 1
        } else {
            end
        };
        (line_start, line_end - line_start)
    } else {
        let trailing_ws = before.len() - before.trim_end().len();
        (offset - trailing_ws, len + trailing_ws)
    }
}

/// Applies edits to source text in one pass. Edits must be
/// non-overlapping; they are applied highest-offset first so earlier
/// spans stay valid.
pub fn apply_edits(src: &str, edits: &[Edit]) -> String {
    let mut sorted: Vec<&Edit> = edits.iter().collect();
    sorted.sort_by_key(|edit| edit.offset);
    let mut out = src.to_string();
    for edit in sorted.into_iter().rev() {
        out.replace_range(edit.offset..edit.offset + edit.len, &edit.replacement);
    }
    out
}

/// Byte span of the full line(s) covering `start..end`, trailing
/// newline included.
fn line_span(src: &str, start: usize, end: usize) -> (usize, usize) {
    let line_start = src[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let line_end = if src[..end].ends_with('\n') {
        end
    } else {
        end + src[end..]
            .find('\n')
            .map(|i| i + 1)
            .unwrap_or(src.len() - end)
    };
    (line_start, line_end)
}

/// Renders one file's planned edits as a `-`/`+` line diff (the
/// `fix --dry-run` output). Edits touching the same line(s) are shown
/// as one hunk.
pub fn render_fix_diff(src: &str, fix: &FileFix) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "--- {}", fix.path.display());
    let mut groups: Vec<(usize, usize, Vec<&Edit>)> = Vec::new();
    for edit in &fix.edits {
        let (ls, le) = line_span(src, edit.offset, edit.offset + edit.len);
        match groups.last_mut() {
            Some((_, ge, list)) if ls <= *ge => {
                *ge = (*ge).max(le);
                list.push(edit);
            }
            _ => groups.push((ls, le, vec![edit])),
        }
    }
    for (ls, le, list) in groups {
        let line_no = src[..ls].bytes().filter(|&b| b == b'\n').count() + 1;
        let rules: Vec<&str> = {
            let mut ids: Vec<&str> = list.iter().map(|edit| edit.rule).collect();
            ids.dedup();
            ids
        };
        let _ = writeln!(out, "@@ line {} [{}]", line_no, rules.join(", "));
        let old = &src[ls..le];
        let mut new = old.to_string();
        for edit in list.iter().rev() {
            let local = edit.offset - ls;
            new.replace_range(local..local + edit.len, &edit.replacement);
        }
        for line in old.lines() {
            let _ = writeln!(out, "- {line}");
        }
        for line in new.lines() {
            let _ = writeln!(out, "+ {line}");
        }
    }
    out
}

/// The outcome of a `fix` run.
#[derive(Debug)]
pub struct FixReport {
    /// Files changed (or that would change, under `--dry-run`).
    pub files: Vec<PathBuf>,
    /// Total edits applied (or planned).
    pub edits: usize,
    /// Rendered diff of every planned edit.
    pub diff: String,
    /// True when a re-plan after applying finds nothing further — the
    /// single pass reached the fixed point. Always true for `--dry-run`
    /// (nothing was applied to re-check).
    pub converged: bool,
}

/// Plans and (unless `dry_run`) applies every mechanical fix under
/// `root`, then re-plans from the written tree to confirm the fixed
/// point.
///
/// # Errors
///
/// Returns [`EngineError`] when a file cannot be read, lexed or written.
pub fn fix_workspace(root: &Path, dry_run: bool) -> Result<FixReport, EngineError> {
    let ws = Workspace::from_root(root)?;
    let fixes = plan_fixes(&ws);
    let mut diff = String::new();
    let mut edits = 0usize;
    let mut files = Vec::new();
    for fix in &fixes {
        let Some(ctx) = ws.ctx_for(&fix.path) else {
            continue;
        };
        diff.push_str(&render_fix_diff(&ctx.src, fix));
        edits += fix.edits.len();
        files.push(fix.path.clone());
        if !dry_run {
            let fixed = apply_edits(&ctx.src, &fix.edits);
            let on_disk = root.join(&fix.path);
            fs::write(&on_disk, fixed).map_err(|error| EngineError {
                path: fix.path.clone(),
                message: error.to_string(),
            })?;
        }
    }
    let converged = if dry_run {
        true
    } else {
        plan_fixes(&Workspace::from_root(root)?).is_empty()
    };
    Ok(FixReport {
        files,
        edits,
        diff,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileCtx;

    fn workspace_of(files: &[(&str, &str, &str)]) -> Workspace {
        let ctxs: Vec<FileCtx> = files
            .iter()
            .map(|(path, krate, src)| FileCtx::from_source(*path, *krate, src).unwrap())
            .collect();
        Workspace::from_ctxs(ctxs)
    }

    /// Applies every planned fix in memory and returns the new sources.
    fn fix_in_memory(files: &[(&str, &str, &str)]) -> Vec<(String, String, String)> {
        let ws = workspace_of(files);
        let fixes = plan_fixes(&ws);
        files
            .iter()
            .map(|(path, krate, src)| {
                let fixed = match fixes.iter().find(|f| f.path == Path::new(path)) {
                    Some(fix) => apply_edits(src, &fix.edits),
                    None => src.to_string(),
                };
                (path.to_string(), krate.to_string(), fixed)
            })
            .collect()
    }

    fn replan(files: &[(String, String, String)]) -> Vec<FileFix> {
        let ctxs: Vec<FileCtx> = files
            .iter()
            .map(|(path, krate, src)| {
                FileCtx::from_source(path.as_str(), krate.as_str(), src).unwrap()
            })
            .collect();
        plan_fixes(&Workspace::from_ctxs(ctxs))
    }

    #[test]
    fn d001_rename_covers_import_and_uses() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); m.insert(1, 2); }\n";
        let fixed = fix_in_memory(&[("crates/core/src/a.rs", "core", src)]);
        assert_eq!(
            fixed[0].2,
            "use std::collections::BTreeMap;\nfn f() { let m: BTreeMap<u32, u32> = BTreeMap::new(); m.insert(1, 2); }\n"
        );
    }

    #[test]
    fn d008_renames_label_to_suggestion() {
        let src = "fn f(root: Seed) { let s = root.derive(\"Shared Seed\", 0); }\n";
        let fixed = fix_in_memory(&[("crates/core/src/mixer.rs", "core", src)]);
        assert_eq!(
            fixed[0].2,
            "fn f(root: Seed) { let s = root.derive(\"mixer/shared-seed\", 0); }\n"
        );
    }

    #[test]
    fn d008_fix_does_not_introduce_d007() {
        // Two sites whose kebab projections collide; suggestions must
        // disambiguate so the fixed tree has no duplicate labels.
        let files = [
            (
                "crates/core/src/a.rs",
                "core",
                "fn f(r: Seed) { r.derive(\"X\", 0); }\n",
            ),
            (
                "crates/core/src/b.rs",
                "core",
                "const L: &str = \"a/x\";\nfn g(r: Seed) { r.derive(\"a x\", 0); r.derive(L, 0); }\n",
            ),
        ];
        let fixed = fix_in_memory(&files);
        let refixed: Vec<(&str, &str, &str)> = fixed
            .iter()
            .map(|(p, k, s)| (p.as_str(), k.as_str(), s.as_str()))
            .collect();
        let ws = workspace_of(&refixed);
        let labels: Vec<&str> = ws
            .graph
            .derives
            .iter()
            .filter_map(|site| site.label.value())
            .collect();
        let mut deduped = labels.clone();
        deduped.sort_unstable();
        deduped.dedup();
        assert_eq!(labels.len(), deduped.len(), "{labels:?}");
    }

    #[test]
    fn d009_removes_whole_line_directive() {
        let src = "// lcakp-lint: allow(D001) reason=\"was needed once\"\nfn f() { let x = 1; }\n";
        let fixed = fix_in_memory(&[("crates/core/src/a.rs", "core", src)]);
        assert_eq!(fixed[0].2, "fn f() { let x = 1; }\n");
    }

    #[test]
    fn d009_removes_trailing_directive_only() {
        let src = "fn f() { let x = 1; } // lcakp-lint: allow(D002) reason=\"old\"\n";
        let fixed = fix_in_memory(&[("crates/core/src/a.rs", "core", src)]);
        assert_eq!(fixed[0].2, "fn f() { let x = 1; }\n");
    }

    #[test]
    fn d009_keeps_directive_with_a_live_id() {
        // D002 still fires (thread_rng), D001 is stale — but the
        // directive is not fully stale, so the fixer leaves it for a
        // human (D009 still reports the stale half).
        let src = "// lcakp-lint: allow(D001, D002) reason=\"entropy ok here\"\nfn f() { let r = thread_rng(); }\n";
        let fixed = fix_in_memory(&[("crates/core/src/a.rs", "core", src)]);
        assert_eq!(fixed[0].2, src);
    }

    #[test]
    fn d014_inserts_loop_bound_skeleton_and_converges() {
        let src = "impl LcaKp {\n    pub fn query_walk(&self, oracle: &Oracle) -> u64 {\n        \
                   let mut total = 0;\n        while total < 9 {\n            total += \
                   oracle.try_query(total);\n        }\n        total\n    }\n}\n";
        let fixed = fix_in_memory(&[("crates/core/src/a.rs", "core", src)]);
        assert!(
            fixed[0].2.contains(
                "        // lcakp-lint: loop-bound(TODO) reason=\"TODO: why this loop is \
                 bounded\"\n        while total < 9 {"
            ),
            "{}",
            fixed[0].2
        );
        assert!(replan(&fixed).is_empty(), "second pass must be a no-op");
    }

    #[test]
    fn d014_fix_respects_allow() {
        let src = "impl LcaKp {\n    pub fn query_walk(&self, oracle: &Oracle) -> u64 {\n        \
                   let mut total = 0;\n        // lcakp-lint: allow(D014) reason=\"reviewed: \
                   fault-driven retry\"\n        while total < 9 {\n            total += \
                   oracle.try_query(total);\n        }\n        total\n    }\n}\n";
        let fixed = fix_in_memory(&[("crates/core/src/a.rs", "core", src)]);
        assert_eq!(fixed[0].2, src);
    }

    #[test]
    fn suppressed_sites_are_not_edited() {
        let src = "// lcakp-lint: allow(D001) reason=\"reviewed: cache only\"\nuse std::collections::HashMap;\n";
        let fixed = fix_in_memory(&[("crates/core/src/a.rs", "core", src)]);
        assert_eq!(fixed[0].2, src);
    }

    #[test]
    fn fixes_reach_a_fixed_point_in_one_pass() {
        let files = [
            (
                "crates/core/src/a.rs",
                "core",
                "use std::collections::{HashMap, HashSet};\nfn f(r: Seed) { let m: HashMap<u32, u32> = HashMap::new(); r.derive(\"plainlabel\", 0); }\n",
            ),
            (
                "crates/core/src/b.rs",
                "core",
                "// lcakp-lint: allow(D004) reason=\"stale\"\nfn g(r: Seed) { r.derive(\"Another Label\", 1); }\n",
            ),
        ];
        let fixed = fix_in_memory(&files);
        assert!(replan(&fixed).is_empty(), "second pass must be a no-op");
    }

    /// Pseudo-random (deterministic LCG) property test: whatever mix of
    /// fixable findings we generate, one apply pass is idempotent.
    #[test]
    fn property_fix_is_idempotent() {
        let mut state = 0x9e37_79b9_u64;
        let mut next = move |bound: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % bound
        };
        for case in 0..40 {
            let mut src = String::new();
            for stmt in 0..(1 + next(5)) {
                match next(4) {
                    0 => {
                        let _ = writeln!(src, "use std::collections::HashMap;");
                    }
                    1 => {
                        let _ = writeln!(
                            src,
                            "fn d{case}_{stmt}(r: Seed) {{ r.derive(\"Bad Label {case} {stmt}\", {stmt}); }}"
                        );
                    }
                    2 => {
                        let _ = writeln!(src, "// lcakp-lint: allow(D005) reason=\"stale {case}\"");
                        let _ = writeln!(src, "fn f{case}_{stmt}() {{}}");
                    }
                    _ => {
                        let _ = writeln!(
                            src,
                            "fn ok{case}_{stmt}(r: Seed) {{ r.derive(\"good/label-{case}-{stmt}\", 0); }}"
                        );
                    }
                }
            }
            let files = [("crates/core/src/gen.rs", "core", src.as_str())];
            let once = fix_in_memory(&files);
            assert!(
                replan(&once).is_empty(),
                "case {case} did not converge:\n{}",
                once[0].2
            );
            let twice_files = [("crates/core/src/gen.rs", "core", once[0].2.as_str())];
            let twice = fix_in_memory(&twice_files);
            assert_eq!(once[0].2, twice[0].2, "case {case} not idempotent");
        }
    }

    #[test]
    fn diff_shows_minus_and_plus_lines() {
        let src = "use std::collections::HashMap;\n";
        let ws = workspace_of(&[("crates/core/src/a.rs", "core", src)]);
        let fixes = plan_fixes(&ws);
        let diff = render_fix_diff(src, &fixes[0]);
        assert!(diff.contains("- use std::collections::HashMap;"), "{diff}");
        assert!(diff.contains("+ use std::collections::BTreeMap;"), "{diff}");
        assert!(diff.contains("[D001]"), "{diff}");
    }
}
