//! `lcakp-lint` — the workspace invariant checker.
//!
//! Every guarantee this reproduction makes — `1 − ε` consistency
//! (Theorem 4.1), replayable fault plans, reproducible quantiles — rests
//! on invariants `rustc` cannot see: all randomness must derive from the
//! domain-separated shared [`Seed`](https://docs.rs), iteration order in
//! seeded paths must be deterministic, and every oracle access in the
//! LCA hot path must go through the metered, fallible `try_*` API. This
//! crate enforces those invariants as token-level lints with stable rule
//! ids (`D001`–`D005`), `file:line:col` diagnostics, JSON output and an
//! in-source allow mechanism:
//!
//! ```text
//! // lcakp-lint: allow(D005) reason="the single experiment root seed"
//! ```
//!
//! See `docs/lints.md` for the rule catalogue and the paper-level
//! invariant each rule protects. The crate is dependency-free by design
//! (its own minimal Rust lexer, no `syn`): it must never be broken by
//! the crates it checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod budget;
pub mod callgraph;
pub mod cfg;
pub mod context;
pub mod dataflow;
pub mod engine;
pub mod fix;
pub mod graph;
pub mod lexer;
pub mod rules;
pub mod sarif;

pub use budget::{
    analyze, is_probe_name, render_budget_json, BudgetAnalysis, FnCost, RootBudget,
    PROBE_INTRINSICS,
};
pub use callgraph::{
    build_callgraph, render_callgraph_json, CallEdge, CallGraph, CallKind, Cycle, FnDef,
    HOT_PATH_CRATES,
};
pub use cfg::{enclosing_loops, extract_loops, LoopKind, LoopSite};
pub use context::{crate_name_for, AllowEntry, ConstStr, FileCtx};
pub use dataflow::{int_consts, loop_trip_bound, parse_bound, Bound, Term, LOOP_BOUND_DIRECTIVE};
pub use engine::{
    lint_ctx, lint_file, lint_workspace, render_json, render_text, walk_all_sources,
    walk_production_sources, Diagnostic, EngineError, Workspace,
};
pub use fix::{apply_edits, fix_workspace, plan_fixes, render_fix_diff, Edit, FileFix, FixReport};
pub use graph::{build_graph, render_graph_json, DeriveSite, LabelSource, RngSite, SeedGraph};
pub use lexer::{tokenize, tokenize_with_comments, Comment, LexError, Token, TokenKind};
pub use rules::{
    all_rules, label_conforms, label_suggestions, rule_by_id, Check, Finding, RuleSpec, Severity,
};
pub use sarif::{render_sarif, SARIF_SCHEMA};
