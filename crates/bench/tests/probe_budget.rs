//! Property test tying the static probe-budget certificate to the
//! runtime access counters: for arbitrary small workloads, epsilons,
//! and retry policies, the measured per-query oracle accesses never
//! exceed the certified `LcaKp::query_with_audit` bound evaluated
//! under that configuration's symbol bindings.

use std::path::Path;
use std::sync::OnceLock;

use lcakp_core::{LcaKp, RetryPolicy};
use lcakp_knapsack::iky::Epsilon;
use lcakp_knapsack::ItemId;
use lcakp_lint::{Bound, Workspace};
use lcakp_oracle::{InstanceOracle, ItemOracle};
use lcakp_reproducible::SampleBudget;
use lcakp_workloads::{Family, WorkloadSpec};
use proptest::prelude::*;

/// The certified symbolic probe bound of the flagship root, derived
/// from the live tree once (building the lint workspace per case
/// would dominate the test's runtime).
fn certified_query_bound() -> &'static Bound {
    static BOUND: OnceLock<Bound> = OnceLock::new();
    BOUND.get_or_init(|| {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("bench crate lives two levels below the workspace root");
        let ws = Workspace::from_root(root).expect("lint workspace builds");
        ws.budget()
            .roots
            .iter()
            .find(|r| r.root == "LcaKp::query_with_audit")
            .expect("flagship root certified")
            .probes
            .clone()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Measured accesses ≤ certified bound, for every sampled
    /// configuration and every query.
    #[test]
    fn measured_accesses_never_exceed_certified_bound(
        n in 40usize..80,
        den in 4u64..10,
        max_retries in 0u32..3,
        seed in 0u64..1_000_000,
    ) {
        let eps = Epsilon::new(1, den).expect("valid eps");
        let lca = LcaKp::new(eps)
            .expect("lca builds")
            .with_budget(SampleBudget::Calibrated { factor: 0.002 })
            .with_retry_policy(RetryPolicy { max_retries });
        let certified = certified_query_bound()
            .eval(&|sym| match sym {
                "retry-attempts" => Some(1 + u64::from(max_retries)),
                "coupon-samples" => Some(lca.coupon_samples()),
                "eps-estimation-samples" => Some(lca.eps_estimation_samples_cap()),
                _ => None,
            })
            .expect("all certificate symbols bound");
        prop_assert_eq!(
            certified,
            lca.worst_case_accesses(),
            "certificate and worst_case_accesses() disagree"
        );

        let norm = WorkloadSpec::new(Family::Uncorrelated { range: 100 }, n, seed)
            .generate_normalized()
            .expect("workload generates");
        let oracle = InstanceOracle::new(&norm);
        let root = lcakp_bench::experiment_root("budget-prop");
        let shared_seed = root.derive("budget-prop/shared-seed", seed);
        let mut rng = root.derive("budget-prop/sampling", seed).rng();
        for i in 0..3usize {
            let before = oracle.stats();
            let item = ItemId((i * 11) % norm.len());
            lca.query_with_audit(&oracle, &mut rng, item, &shared_seed)
                .expect("query runs");
            let measured = oracle.stats().since(before).total();
            prop_assert!(
                measured <= certified,
                "query {i}: measured {measured} accesses, certified {certified}"
            );
        }
    }
}
