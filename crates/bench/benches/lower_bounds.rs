//! Criterion bench: adversary-experiment throughput (the E1–E3 engines).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcakp_lowerbounds::approx_reduction::{run_approx_experiment, RatioPair};
use lcakp_lowerbounds::maximal_feasible::run_maximal_experiment;
use lcakp_lowerbounds::or_reduction::{
    run_point_query_experiment, run_weighted_sampling_experiment,
};
use std::hint::black_box;

fn bench_or_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("or-reduction");
    group.sample_size(10);
    for &n in &[256usize, 2048] {
        group.bench_with_input(BenchmarkId::new("point-query", n), &n, |b, &n| {
            b.iter(|| run_point_query_experiment(black_box(n), (n / 3) as u64, 200, 1));
        });
        group.bench_with_input(BenchmarkId::new("weighted", n), &n, |b, &n| {
            b.iter(|| run_weighted_sampling_experiment(black_box(n), 4, 200, 1));
        });
    }
    group.finish();
}

fn bench_hard_families(c: &mut Criterion) {
    let mut group = c.benchmark_group("hard-families");
    group.sample_size(10);
    group.bench_function("approx-reduction-n1024", |b| {
        let ratios = RatioPair::new(50, 25, 100);
        b.iter(|| run_approx_experiment(1024, ratios, 100, 200, 2));
    });
    group.bench_function("maximal-feasible-n550", |b| {
        b.iter(|| run_maximal_experiment(550, 50, 200, 3));
    });
    group.finish();
}

criterion_group!(benches, bench_or_reduction, bench_hard_families);
criterion_main!(benches);
