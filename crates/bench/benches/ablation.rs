//! Criterion bench: the consistency-engine ablation — reproducible vs
//! naive quantiles inside `LCA-KP` (experiment E11's timing form: the
//! reproducible engine's overhead is the price of consistency).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcakp_core::{KnapsackLca, LcaKp, QuantileEngine};
use lcakp_knapsack::iky::Epsilon;
use lcakp_knapsack::ItemId;
use lcakp_oracle::{InstanceOracle, Seed};
use lcakp_reproducible::SampleBudget;
use lcakp_workloads::{Family, WorkloadSpec};
use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantile-engine");
    group.sample_size(10);
    let eps = Epsilon::new(1, 4).expect("valid eps");
    let spec = WorkloadSpec::new(Family::SmallDominated, 20_000, 5);
    let norm = spec.generate_normalized().expect("workload generates");
    for engine in [QuantileEngine::Reproducible, QuantileEngine::Naive] {
        let lca = LcaKp::new(eps)
            .expect("lca builds")
            .with_engine(engine)
            .with_budget(SampleBudget::Calibrated { factor: 0.02 });
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{engine:?}")),
            &norm,
            |b, norm| {
                let oracle = InstanceOracle::new(norm);
                let seed = Seed::from_entropy_u64(1);
                let mut rng = Seed::from_entropy_u64(2).rng();
                b.iter(|| {
                    lca.query(&oracle, &mut rng, black_box(ItemId(3)), &seed)
                        .expect("query runs")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
