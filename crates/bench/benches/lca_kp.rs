//! Criterion bench: `LCA-KP` per-query cost (experiment E4's timing
//! form): flat in n, polynomial in 1/ε.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcakp_core::{KnapsackLca, LcaKp};
use lcakp_knapsack::iky::Epsilon;
use lcakp_knapsack::ItemId;
use lcakp_oracle::{InstanceOracle, Seed};
use lcakp_reproducible::SampleBudget;
use lcakp_workloads::{Family, WorkloadSpec};
use std::hint::black_box;

fn bench_query_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("lca-kp-query-vs-n");
    group.sample_size(10);
    let eps = Epsilon::new(1, 4).expect("valid eps");
    let lca = LcaKp::new(eps)
        .expect("lca builds")
        .with_budget(SampleBudget::Calibrated { factor: 0.02 });
    for &n in &[1_000usize, 10_000, 100_000] {
        let spec = WorkloadSpec::new(Family::SmallDominated, n, 7);
        let norm = spec.generate_normalized().expect("workload generates");
        group.bench_with_input(BenchmarkId::from_parameter(n), &norm, |b, norm| {
            let oracle = InstanceOracle::new(norm);
            let seed = Seed::from_entropy_u64(1);
            let mut rng = Seed::from_entropy_u64(2).rng();
            b.iter(|| {
                lca.query(&oracle, &mut rng, black_box(ItemId(n / 2)), &seed)
                    .expect("query runs")
            });
        });
    }
    group.finish();
}

fn bench_query_vs_eps(c: &mut Criterion) {
    let mut group = c.benchmark_group("lca-kp-query-vs-eps");
    group.sample_size(10);
    let spec = WorkloadSpec::new(Family::SmallDominated, 20_000, 7);
    let norm = spec.generate_normalized().expect("workload generates");
    for &(num, den) in &[(1u64, 2u64), (1, 4), (1, 8)] {
        let eps = Epsilon::new(num, den).expect("valid eps");
        let lca = LcaKp::new(eps)
            .expect("lca builds")
            .with_budget(SampleBudget::Calibrated { factor: 0.02 });
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{num}-{den}")),
            &norm,
            |b, norm| {
                let oracle = InstanceOracle::new(norm);
                let seed = Seed::from_entropy_u64(1);
                let mut rng = Seed::from_entropy_u64(2).rng();
                b.iter(|| {
                    lca.query(&oracle, &mut rng, black_box(ItemId(11)), &seed)
                        .expect("query runs")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_query_vs_n, bench_query_vs_eps);
criterion_main!(benches);
