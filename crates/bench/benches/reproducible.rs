//! Criterion bench: reproducible median / quantile cost vs sample size
//! and domain width (experiment E7's timing form).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcakp_reproducible::{rmedian, rquantile, Domain, RMedianConfig, RQuantileConfig, Seed};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::hint::black_box;

fn sample(n: usize, bits: u32, seed: u64) -> Vec<u128> {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let max = if bits == 0 { 1 } else { 1u128 << bits };
    (0..n).map(|_| rng.gen_range(0..max)).collect()
}

fn bench_rmedian(c: &mut Criterion) {
    let mut group = c.benchmark_group("rmedian");
    let seed = Seed::from_entropy_u64(1);
    for &n in &[1_000usize, 10_000, 100_000] {
        let data = sample(n, 40, 7);
        let config = RMedianConfig {
            domain: Domain::new(40).expect("domain fits"),
            tau: 0.05,
        };
        group.bench_with_input(BenchmarkId::new("samples", n), &data, |b, data| {
            b.iter(|| rmedian(black_box(data), &config, &seed).expect("rmedian runs"));
        });
    }
    for &bits in &[8u32, 32, 64] {
        let data = sample(20_000, bits, 9);
        let config = RMedianConfig {
            domain: Domain::new(bits).expect("domain fits"),
            tau: 0.05,
        };
        group.bench_with_input(BenchmarkId::new("domain-bits", bits), &data, |b, data| {
            b.iter(|| rmedian(black_box(data), &config, &seed).expect("rmedian runs"));
        });
    }
    group.finish();
}

fn bench_rquantile(c: &mut Criterion) {
    let mut group = c.benchmark_group("rquantile");
    let seed = Seed::from_entropy_u64(2);
    let data = sample(20_000, 32, 11);
    for &p in &[0.1f64, 0.5, 0.9] {
        let config = RQuantileConfig {
            domain: Domain::new(32).expect("domain fits"),
            p,
            tau: 0.05,
        };
        group.bench_with_input(BenchmarkId::from_parameter(p), &data, |b, data| {
            b.iter(|| rquantile(black_box(data), &config, &seed).expect("rquantile runs"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rmedian, bench_rquantile);
criterion_main!(benches);
