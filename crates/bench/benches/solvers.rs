//! Criterion bench: the Knapsack substrate solvers (experiment E10's
//! timing panel in statistical form).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcakp_knapsack::iky::Epsilon;
use lcakp_knapsack::solvers;
use lcakp_workloads::{Family, WorkloadSpec};
use std::hint::black_box;

fn bench_exact_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact-solvers");
    for &n in &[16usize, 24, 32] {
        let spec = WorkloadSpec::new(Family::WeaklyCorrelated { range: 200 }, n, 42);
        let instance = spec.generate().expect("workload generates");
        group.bench_with_input(
            BenchmarkId::new("branch_and_bound", n),
            &instance,
            |b, inst| {
                b.iter(|| solvers::branch_and_bound(black_box(inst)).expect("bb runs"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("meet_in_the_middle", n),
            &instance,
            |b, inst| {
                b.iter(|| solvers::meet_in_the_middle(black_box(inst)).expect("mitm runs"));
            },
        );
        group.bench_with_input(BenchmarkId::new("dp_by_weight", n), &instance, |b, inst| {
            b.iter(|| solvers::dp_by_weight(black_box(inst)).expect("dp runs"));
        });
    }
    group.finish();
}

fn bench_scalable_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalable-solvers");
    group.sample_size(20);
    for &n in &[1_000usize, 10_000, 100_000] {
        let spec = WorkloadSpec::new(Family::WeaklyCorrelated { range: 1000 }, n, 42);
        let instance = spec.generate().expect("workload generates");
        group.bench_with_input(
            BenchmarkId::new("modified_greedy", n),
            &instance,
            |b, inst| {
                b.iter(|| solvers::modified_greedy(black_box(inst)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("fractional_optimum", n),
            &instance,
            |b, inst| {
                b.iter(|| solvers::fractional::fractional_optimum(black_box(inst)));
            },
        );
    }
    let eps = Epsilon::new(1, 8).expect("valid eps");
    let spec = WorkloadSpec::new(Family::WeaklyCorrelated { range: 100 }, 500, 42);
    let instance = spec.generate().expect("workload generates");
    group.bench_function("fptas-n500-eps1/8", |b| {
        b.iter(|| solvers::fptas(black_box(&instance), eps).expect("fptas runs"));
    });
    group.finish();
}

criterion_group!(benches, bench_exact_solvers, bench_scalable_solvers);
criterion_main!(benches);
