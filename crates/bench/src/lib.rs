//! Shared helpers for the experiment binaries (`e1`–`e11`) and the
//! Criterion benches.
//!
//! Every binary prints a self-describing Markdown table so that
//! `EXPERIMENTS.md` can quote its output verbatim; [`Table`] is the tiny
//! formatter they share.

/// A Markdown table accumulator.
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column names.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header length).
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header length.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders the table as Markdown.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (index, cell) in row.iter().enumerate() {
                widths[index] = widths[index].max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut out = String::from("|");
            for (index, cell) in cells.iter().enumerate() {
                out.push_str(&format!(" {:width$} |", cell, width = widths[index]));
            }
            out
        };
        let mut out = String::new();
        out.push_str(&line(&self.header));
        out.push('\n');
        out.push('|');
        for width in &widths {
            out.push_str(&format!("{:-<width$}|", "", width = width + 2));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints a section banner shared by all experiment binaries.
pub fn banner(id: &str, claim: &str, anchor: &str) {
    println!("\n== {id} — {claim}");
    println!("   paper anchor: {anchor}\n");
}

/// Root seed for experiment `name` (`"e8"`, `"e13"`, …), derived by
/// domain separation from the single workspace-wide experiment root.
///
/// Every stream an experiment needs is a further [`Seed::derive`] off
/// this root — no binary hand-picks raw seed integers (lint rule D005),
/// so every table in `EXPERIMENTS.md` is replayable from one constant.
pub fn experiment_root(name: &str) -> lcakp_oracle::Seed {
    // lcakp-lint: allow(D005) reason="the single workspace experiment root constant"
    lcakp_oracle::Seed::from_entropy_u64(0x1ca_4b2e_2025).derive(name, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut table = Table::new(["n", "rate"]);
        table.row(["10", "0.5"]);
        table.row(["1000", "0.667"]);
        let rendered = table.render();
        assert!(rendered.contains("| n    | rate  |"));
        assert!(rendered.lines().count() == 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut table = Table::new(["a"]);
        table.row(["1", "2"]);
    }

    #[test]
    fn experiment_roots_are_separated_and_stable() {
        assert_eq!(experiment_root("e8"), experiment_root("e8"));
        assert_ne!(experiment_root("e8"), experiment_root("e13"));
    }
}
