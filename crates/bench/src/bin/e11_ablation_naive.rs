//! E11 — the design ablation the paper motivates in Section 4.1:
//! replacing the reproducible quantile with the naive empirical quantile
//! breaks the consistency of the constructed solution rule.
//!
//! The measurement compares the *rules* (`Index_large`, `e_small`,
//! `B_indicator`) that independent runs construct: two runs answer every
//! possible query identically iff their rules are identical, so rule
//! agreement is exactly solution consistency — measured without paying
//! per-item query costs. The instance is large (20 000 distinct
//! tie-broken efficiencies) so that the empirical quantile's run-to-run
//! flutter is visible; on tiny instances every efficiency atom is
//! over-sampled and even the naive engine accidentally agrees.

use lcakp_bench::{banner, experiment_root, Table};
use lcakp_core::{LcaKp, QuantileEngine, SolutionRule};
use lcakp_knapsack::iky::Epsilon;
use lcakp_oracle::InstanceOracle;
use lcakp_reproducible::SampleBudget;
use lcakp_workloads::{Family, WorkloadSpec};
use std::collections::BTreeMap;

fn main() {
    banner(
        "E11",
        "ablation: naive quantiles in place of rQuantile break rule consistency",
        "Section 4.1 (\"this random sampling will lead to inconsistent answers\")",
    );

    let n = 20_000;
    let runs = 10;
    let eps = Epsilon::new(1, 6).expect("valid eps");
    let mut table = Table::new([
        "workload",
        "engine",
        "distinct rules",
        "mode agreement",
        "distinct e_small values",
    ]);
    for spec in [
        WorkloadSpec::new(Family::SmallDominated, n, 0x11),
        WorkloadSpec::new(
            Family::GarbageMix {
                garbage_percent: 25,
            },
            n,
            0x11,
        ),
        WorkloadSpec::new(Family::WeaklyCorrelated { range: 1000 }, n, 0x11),
    ] {
        let norm = spec.generate_normalized().expect("workload generates");
        let oracle = InstanceOracle::new(&norm);
        for engine in [QuantileEngine::Reproducible, QuantileEngine::Naive] {
            let lca = LcaKp::new(eps)
                .expect("lca builds")
                .with_engine(engine)
                .with_budget(SampleBudget::Calibrated { factor: 0.01 });
            let seed = experiment_root("e11").derive("e11/shared-seed", 0);
            let mut rules: Vec<SolutionRule> = Vec::with_capacity(runs);
            for run in 0..runs {
                let mut rng = experiment_root("e11")
                    .derive("e11/sampling", run as u64)
                    .rng();
                rules.push(
                    lca.build_rule(&oracle, &mut rng, &seed)
                        .expect("rule builds"),
                );
            }
            let mut counts: BTreeMap<String, usize> = BTreeMap::new();
            let mut cutoffs: BTreeMap<Option<u64>, usize> = BTreeMap::new();
            for rule in &rules {
                *counts.entry(format!("{rule:?}")).or_insert(0) += 1;
                *cutoffs.entry(rule.e_small).or_insert(0) += 1;
            }
            let mode = counts.values().copied().max().unwrap_or(0);
            table.row([
                spec.family.to_string(),
                format!("{engine:?}"),
                counts.len().to_string(),
                format!("{:.3}", mode as f64 / runs as f64),
                cutoffs.len().to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "\nExpected shape: the Reproducible engine concentrates the {runs} runs on one\n\
         rule (distinct = 1); the Naive engine's empirical thresholds flutter with the\n\
         fresh sample, fragmenting the runs across many distinct rules — exactly the\n\
         inconsistency Section 4.1 predicts."
    );
}
