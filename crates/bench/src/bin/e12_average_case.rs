//! E12 (extension) — the paper's closing question (Section 5, citing
//! [BCPR24]): can *average-case* assumptions substitute for weighted
//! sampling? Here: rejection sampling turns point queries into weighted
//! samples at cost `n·p_cap/P` point queries per sample — O(1) on benign
//! random instances, and degrading exactly on the needle-in-a-haystack
//! structure behind Theorem 3.2.

use lcakp_bench::{banner, experiment_root, Table};
use lcakp_core::solution_audit::{audit_selection, exact_optimum};
use lcakp_core::LcaKp;
use lcakp_knapsack::iky::Epsilon;
use lcakp_oracle::{InstanceOracle, ItemOracle, RejectionSamplingOracle};
use lcakp_reproducible::SampleBudget;
use lcakp_workloads::{Family, WorkloadSpec};

fn main() {
    banner(
        "E12 (extension)",
        "average-case escape: rejection sampling emulates weighted sampling on benign instances",
        "Section 5 (open question, [BCPR24]); contrast with Theorem 3.2",
    );

    let n = 250;
    // ε = 1/8: small enough that the small-item cut-off machinery is
    // active (see the note in e5_approximation).
    let eps = Epsilon::new(1, 8).expect("valid eps");
    let mut table = Table::new([
        "workload",
        "needle factor p_cap/p̄",
        "expected probes/sample",
        "measured probes (1 rule)",
        "ratio vs OPT",
        "feasible",
    ]);
    for (label, spec) in [
        (
            "benign: uncorrelated",
            WorkloadSpec::new(Family::Uncorrelated { range: 100 }, n, 0x12),
        ),
        (
            "benign: subset-sum",
            WorkloadSpec::new(Family::SubsetSum { range: 100 }, n, 0x12),
        ),
        (
            "needle: one dominant item",
            WorkloadSpec::new(
                Family::LargeDominated {
                    heavy: 1,
                    heavy_profit: 100_000,
                },
                n,
                0x12,
            ),
        ),
    ] {
        let norm = spec.generate_normalized().expect("workload generates");
        let inner = InstanceOracle::new(&norm);
        let p_cap = norm
            .as_instance()
            .items()
            .iter()
            .map(|item| item.profit)
            .max()
            .expect("nonempty");
        let oracle = RejectionSamplingOracle::new(&inner, p_cap, 100_000);
        let mean_profit = norm.total_profit() as f64 / n as f64;
        let lca = LcaKp::new(eps)
            .expect("lca builds")
            .with_budget(SampleBudget::Calibrated { factor: 0.002 })
            .with_max_samples_per_query(50_000_000);
        let root = experiment_root("e12");
        let mut rng = root.derive("e12/sampling", n as u64).rng();
        let seed = root.derive("e12/shared-seed", 0);
        // One rule build (the per-query work), materialized via
        // MAPPING-GREEDY for the quality audit — full per-item assembly
        // through a 250× rejection overhead would be pointless burn.
        let rule = match lca.build_rule(&oracle, &mut rng, &seed) {
            Ok(rule) => rule,
            Err(err) => {
                eprintln!("skipping {label}: {err}");
                continue;
            }
        };
        let probes = oracle.stats().point_queries;
        let selection = rule.materialize(&norm);
        let optimum = exact_optimum(&norm).expect("optimum computable");
        let audit = audit_selection(&norm, &selection, optimum);
        table.row([
            label.to_string(),
            format!("{:.1}", p_cap as f64 / mean_profit),
            format!("{:.1}", oracle.expected_cost_per_sample()),
            probes.to_string(),
            format!("{:.3}", audit.ratio),
            audit.feasible.to_string(),
        ]);
        inner.reset_stats();
    }
    table.print();
    println!(
        "\nExpected shape: on benign families the probes-per-sample factor is a small\n\
         constant and the solution quality matches the weighted-sampling LCA; on the\n\
         needle family the factor tracks the profit skew (~n·p_max/P) — average-case\n\
         assumptions buy back what Theorem 3.2 forbids in the worst case, and only\n\
         that."
    );
}
