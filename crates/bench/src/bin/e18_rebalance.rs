//! E18 — traffic-driven cluster runtime and admission-coupled ring
//! rebalancing.
//!
//! The rebalance simulator (`lcakp-sim::rebalance`) derives
//! seed-replayable traffic-and-fault schedules — hot-shard, bursty, and
//! query-of-death arrival shapes, optionally surged, with node crashes,
//! restarts, and partitions layered on — and serves them through the
//! simulated cluster twice per case: once with the admission-coupled
//! [`RebalanceController`] armed, and once with the ring frozen at boot
//! (the no-rebalance twin). The E18 invariants hold on the controlled
//! run's own audit trail: every promotion cites an overloaded signal
//! and a live under-loaded target, no shard ping-pongs past the
//! per-window bound, ring epochs strictly increase and survive crash
//! recovery, and every acknowledged answer is byte-identical to the
//! shard's standalone replay — migration is invisible in the answer
//! bytes because LCA-KP queries are stateless (Definition 2.4), which
//! is the whole reason shard promotion is safe to do mid-trace.
//!
//! Two demonstrations:
//!
//! * faithful routing survives the default seed range with zero
//!   violations, and a hot-shard scenario is demonstrably *relieved*:
//!   neither the hottest node's p99 nor the cluster shed rate gets
//!   worse than the frozen-ring twin's, and at least one strictly
//!   improves;
//! * the deliberately planted stale-epoch router (keeps serving from
//!   the boot ring view after a promotion) is caught shedding on epoch
//!   mismatches and auto-shrunk to a minimal replayable repro.
//!
//! `--smoke` prints only the committed smoke range's canonical JSON
//! for CI to diff against `crates/sim/tests/golden/e18_smoke.json`.
//!
//! [`RebalanceController`]: lcakp_service::RebalanceController

use lcakp_bench::{banner, experiment_root, Table};
use lcakp_service::RebalanceDiscipline;
use lcakp_sim::{
    run_rebalance_range, run_rebalance_smoke, RebalanceSimConfig, SimEvent, Violation,
    E18_SMOKE_CASES,
};

fn main() {
    // lcakp-lint: allow(D002) reason="--smoke flag selects the CI golden output, no entropy involved"
    let smoke_only = std::env::args().any(|arg| arg == "--smoke");
    let root = experiment_root("e18");

    if smoke_only {
        let json = run_rebalance_smoke(&root).expect("smoke range runs");
        println!("{json}");
        return;
    }

    banner(
        "E18",
        "admission-coupled rebalancing relieves hot shards, and a stale-epoch router shrinks",
        "statelessness makes migration free: any replica serves any shard byte-identically",
    );

    // ---- Part 1: faithful routing survives and relieves. ----
    let config = RebalanceSimConfig::default();
    let report = run_rebalance_range(&root, &config, 0..E18_SMOKE_CASES).expect("range runs");
    let mut table = Table::new([
        "case",
        "events",
        "answered",
        "shed",
        "promotions",
        "epoch",
        "p99 vs twin",
        "shed\u{2030} vs twin",
        "relieved",
        "violations",
    ]);
    for case in &report.cases {
        let events = case
            .events
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("; ");
        table.row([
            case.case.to_string(),
            events,
            case.stats.answered.to_string(),
            case.stats.shed.to_string(),
            case.stats.promotions.to_string(),
            case.stats.final_epoch.to_string(),
            format!("{}/{}", case.stats.p99_ticks, case.stats.twin_p99_ticks),
            format!(
                "{}/{}",
                case.stats.shed_permille, case.stats.twin_shed_permille
            ),
            case.stats.relieved.to_string(),
            case.violations.len().to_string(),
        ]);
    }
    table.print();
    assert_eq!(
        report.total_violations(),
        0,
        "faithful routing must survive the default seed range"
    );
    let promotions: usize = report.cases.iter().map(|case| case.stats.promotions).sum();
    assert!(
        promotions > 0,
        "the range must actually push some node into promoting a replica"
    );
    assert!(
        report.hot_shard_relieved(),
        "a hot-shard scenario must be demonstrably relieved vs the frozen-ring twin"
    );
    assert!(
        report
            .cases
            .iter()
            .any(|case| case.stats.failovers > 0 || case.stats.promotions > 0),
        "the range must exercise ownership changes"
    );
    println!(
        "\n{E18_SMOKE_CASES} cases, {promotions} promotions, 0 invariant violations, \
         a hot-shard scenario demonstrably relieved vs its frozen-ring twin."
    );

    // ---- Part 2: the planted stale-epoch router shrinks. ----
    let buggy = RebalanceSimConfig {
        routing: RebalanceDiscipline::StaleEpoch,
        ..RebalanceSimConfig::default()
    };
    let buggy_report =
        run_rebalance_range(&root, &buggy, 0..E18_SMOKE_CASES).expect("buggy range runs");
    let repro = buggy_report
        .repro
        .as_ref()
        .expect("the stale-epoch router must violate within the range");
    println!(
        "\nplanted bug {} caught: {} violating case(s) in the range",
        buggy.routing,
        buggy_report
            .cases
            .iter()
            .filter(|case| !case.violations.is_empty())
            .count()
    );
    print!("{}", repro.render());
    assert!(
        repro.shrunk.events.len() <= 2,
        "the shrunk repro must be minimal"
    );
    assert!(repro
        .shrunk
        .events
        .iter()
        .any(|event| matches!(event, SimEvent::Traffic { .. })));
    assert!(repro
        .shrunk
        .violations
        .iter()
        .any(|violation| matches!(violation, Violation::StaleEpochShed { .. })));

    println!(
        "\nExpected shape: under hot-shard and surge load the controller promotes an\n\
         under-loaded replica for the hottest shard (epoch bumps, journaled on every\n\
         live node), answers stay byte-identical to the standalone replay across the\n\
         migration, and the planted stale-epoch router sheds on epoch mismatches and\n\
         shrinks to a bare traffic-event repro.\n\n\
         All E18 acceptance assertions passed."
    );
}
