//! E13 — fault tolerance: `LCA-KP` under an unreliable oracle.
//!
//! The paper's model assumes every access succeeds; this experiment
//! measures what the implementation *does* when accesses fail. A
//! [`FaultyOracle`] injects seed-replayable transient faults at a swept
//! rate while the retry-plus-degradation ladder
//! ([`LcaKp::query_with_audit`]) absorbs them; a [`BudgetedOracle`]
//! enforces hard access caps. Reported per cell: approximation ratio of
//! the assembled solution, pairwise answer consistency across
//! independent runs, and how often queries degraded to the trivial
//! always-no rule.
//!
//! Degraded answers are interpreted exactly as the ladder defines them:
//! the query abandons the sampled rule and answers "no", consistent with
//! the feasible solution ∅ — so assembled solutions stay feasible at
//! every fault rate and only *lose value* as degradation spreads.

use lcakp_bench::{banner, experiment_root, Table};
use lcakp_core::solution_audit::{
    assemble_audited, audit_selection, exact_optimum, DegradationStats,
};
use lcakp_core::{LcaKp, RetryPolicy};
use lcakp_knapsack::iky::Epsilon;
use lcakp_knapsack::{ItemId, NormalizedInstance, Selection};
use lcakp_oracle::{BudgetedOracle, FaultPlan, FaultyOracle, InstanceOracle, ItemOracle, Seed};
use lcakp_reproducible::SampleBudget;
use lcakp_workloads::{Family, WorkloadSpec};

const N: usize = 120;
const RUNS: usize = 2;

fn answers(selection: &Selection, n: usize) -> Vec<bool> {
    (0..n)
        .map(|index| selection.contains(ItemId(index)))
        .collect()
}

fn pairwise_agreement(runs: &[Vec<bool>]) -> f64 {
    if runs.len() < 2 || runs[0].is_empty() {
        return 1.0;
    }
    let mut pairs = 0u64;
    let mut agree = 0u64;
    for a in 0..runs.len() {
        for b in (a + 1)..runs.len() {
            for (&x, &y) in runs[a].iter().zip(&runs[b]) {
                pairs += 1;
                if x == y {
                    agree += 1;
                }
            }
        }
    }
    agree as f64 / pairs as f64
}

fn faulty_run(
    lca: &LcaKp,
    norm: &NormalizedInstance,
    plan: FaultPlan,
    fault_seed: Seed,
    sampler_seed: Seed,
    seed: &Seed,
) -> (Selection, DegradationStats) {
    let inner = InstanceOracle::new(norm);
    let oracle = FaultyOracle::new(&inner, plan, fault_seed);
    let mut rng = sampler_seed.rng();
    assemble_audited(lca, &oracle, &mut rng, seed).expect("assembly has no hard errors")
}

fn main() {
    banner(
        "E13",
        "LCA-KP degrades gracefully under oracle faults and hard budgets",
        "fault layer over Definition 2.2; degradation to the trivial rule",
    );

    let spec = WorkloadSpec::new(Family::SmallDominated, N, 0xE13);
    let norm = spec.generate_normalized().expect("workload generates");
    let optimum = exact_optimum(&norm).expect("optimum solves");
    let root = experiment_root("e13");
    let shared_seed = root.derive("e13/shared-seed", 0);

    // ---- Sanity: an inert fault plan is bit-identical to no wrapper. ----
    let eps = Epsilon::new(1, 6).expect("valid eps");
    let lca = LcaKp::new(eps)
        .expect("lca builds")
        .with_budget(SampleBudget::Calibrated { factor: 0.002 });
    let bare_oracle = InstanceOracle::new(&norm);
    let (bare, _) = assemble_audited(
        &lca,
        &bare_oracle,
        &mut root.derive("e13/sampling-inert", 0).rng(),
        &shared_seed,
    )
    .expect("bare run");
    let bare_accesses = bare_oracle.stats().total();
    let wrapped_inner = InstanceOracle::new(&norm);
    let wrapped_oracle = FaultyOracle::new(&wrapped_inner, FaultPlan::none(), shared_seed);
    let (wrapped, _) = assemble_audited(
        &lca,
        &wrapped_oracle,
        // lcakp-lint: allow(D007) reason="bit-identity check: the wrapped run must replay the exact sampling stream of the bare run"
        &mut root.derive("e13/sampling-inert", 0).rng(),
        &shared_seed,
    )
    .expect("wrapped run");
    println!(
        "fault rate 0 bit-identity: answers={} accesses={} ({} = {})\n",
        answers(&bare, N) == answers(&wrapped, N),
        bare_accesses == wrapped_inner.stats().total(),
        bare_accesses,
        wrapped_inner.stats().total(),
    );

    // ---- Sweep: transient fault rate × ε. ----
    let mut table = Table::new([
        "eps",
        "fault rate",
        "ratio",
        "feasible",
        "degraded",
        "retries",
        "consistency",
    ]);
    // ε ≤ 1/6 so the small-item machinery is active (at ε ≥ 1/4 the
    // algorithm correctly keeps only large items and SmallDominated
    // yields value 0 even fault-free); budget factors shrink with ε as
    // in E5. Five retries make the per-access failure probability
    // rate⁶ — negligible through rate 0.1 over ~10⁵ accesses per query,
    // but visibly insufficient at 0.15–0.2, which is the ladder.
    for &(num, den, factor) in &[(1u64, 6u64, 0.002f64), (1, 8, 0.001)] {
        let eps = Epsilon::new(num, den).expect("valid eps");
        let lca = LcaKp::new(eps)
            .expect("lca builds")
            .with_budget(SampleBudget::Calibrated { factor })
            .with_retry_policy(RetryPolicy { max_retries: 5 });
        for &rate in &[0.0f64, 0.05, 0.1, 0.15, 0.2] {
            let plan = FaultPlan::transient(rate);
            let mut run_answers = Vec::with_capacity(RUNS);
            let mut last_stats = DegradationStats::default();
            let mut last_ratio = 0.0;
            let mut feasible = true;
            for run in 0..RUNS {
                let (selection, stats) = faulty_run(
                    &lca,
                    &norm,
                    plan,
                    root.derive("e13/fault-plan", run as u64),
                    root.derive("e13/sampling-faulty", run as u64),
                    &shared_seed,
                );
                let audit = audit_selection(&norm, &selection, optimum);
                feasible &= audit.feasible;
                last_ratio = audit.ratio;
                run_answers.push(answers(&selection, N));
                last_stats = stats;
            }
            table.row([
                format!("{num}/{den}"),
                format!("{rate:.2}"),
                format!("{last_ratio:.3}"),
                feasible.to_string(),
                format!("{:.3}", last_stats.degradation_frequency()),
                last_stats.retries_used.to_string(),
                format!("{:.3}", pairwise_agreement(&run_answers)),
            ]);
        }
    }
    table.print();

    // ---- Hard budgets: shrink the global access cap. ----
    println!();
    let eps = Epsilon::new(1, 8).expect("valid eps");
    let lca = LcaKp::new(eps)
        .expect("lca builds")
        .with_budget(SampleBudget::Calibrated { factor: 0.001 });
    let mut table = Table::new([
        "access cap",
        "ratio",
        "feasible",
        "degraded",
        "budget consumed",
    ]);
    for &cap in &[10_000u64, 100_000, 1_000_000, 10_000_000, u64::MAX] {
        let inner = InstanceOracle::new(&norm);
        let oracle = BudgetedOracle::new(&inner, cap);
        let mut rng = root.derive("e13/sampling-budget", cap).rng();
        let (selection, stats) =
            assemble_audited(&lca, &oracle, &mut rng, &shared_seed).expect("budgeted run");
        let audit = audit_selection(&norm, &selection, optimum);
        table.row([
            if cap == u64::MAX {
                "unlimited".to_string()
            } else {
                cap.to_string()
            },
            format!("{:.3}", audit.ratio),
            audit.feasible.to_string(),
            format!("{:.3}", stats.degradation_frequency()),
            stats.budget_consumed.to_string(),
        ]);
    }
    table.print();

    println!(
        "\nExpected shape: at fault rate 0 the wrapped run is bit-identical to the bare\n\
         one; bounded retries hold the ratio near fault-free levels through 0.1, with\n\
         degradation (to the always-no rule, hence feasibility at every rate) growing\n\
         with the rate; under hard caps the ratio falls as queries past the cap degrade,\n\
         and consumed budget never exceeds the cap."
    );
}
