//! E14 — resilient serving: `LCA-KP` behind the `lcakp-service`
//! runtime under a deterministic chaos schedule.
//!
//! Three scenarios exercise the resilience toolkit end to end:
//!
//! * **fault-burst-slo** — a ≥10% blended transient fault rate with
//!   periodic heavy bursts. The runtime must keep the availability SLO
//!   (≥99% of queries answered within deadline) while every full-tier
//!   answer stays byte-identical to its fault-free reference.
//! * **budget-squeeze** — a hard per-worker access cap. Admission
//!   control must pre-shed queries it cannot afford instead of dying
//!   mid-flight on `BudgetExhausted`.
//! * **latency-spike** — a tick-windowed latency surge against a tight
//!   deadline. Queries inside the window degrade or miss the deadline;
//!   service recovers after it.
//!
//! Every scenario runs **twice** and the canonical JSON renderings are
//! byte-compared — determinism under chaos is the headline claim of the
//! experiment. `--smoke` prints only the committed smoke scenario's
//! JSON for CI to diff against
//! `crates/service/tests/golden/e14_smoke.json`.

use lcakp_bench::{banner, experiment_root, Table};
use lcakp_core::solution_audit::DegradationReason;
use lcakp_core::{LcaKp, ResponseTier, RetryPolicy};
use lcakp_knapsack::iky::Epsilon;
use lcakp_oracle::FaultPlan;
use lcakp_reproducible::SampleBudget;
use lcakp_service::{
    run_scenario, run_smoke, seed_to_u64, BackoffPolicy, BreakerConfig, ChaosPlan, ChaosRun,
    ChaosScenario, CostModel, FallbackTrigger, LatencyWindow, RecoveryDiscipline, ServiceConfig,
};
use lcakp_workloads::{Family, WorkloadSpec};

const N: usize = 120;
const SLO: f64 = 0.99;

/// Runs a scenario twice and checks the byte-identity headline claim.
fn run_twice(scenario: &ChaosScenario<'_>) -> (ChaosRun, bool) {
    let first = run_scenario(scenario).expect("scenario runs");
    let second = run_scenario(scenario).expect("scenario reruns");
    let identical = first.json == second.json;
    (first, identical)
}

/// Whether any answered query fell back because its budget ran out
/// *mid-flight* (the admission layer is supposed to make this
/// impossible by pre-shedding).
fn any_midflight_budget_exhaustion(run: &ChaosRun) -> bool {
    run.report.outcomes.iter().any(|outcome| {
        outcome.disposition.answered().is_some_and(|answered| {
            matches!(
                answered.fallback,
                Some(FallbackTrigger::Degraded(
                    DegradationReason::BudgetExhausted { .. }
                ))
            )
        })
    })
}

fn shed_count_of(run: &ChaosRun) -> usize {
    run.report.shed_count()
}

fn main() {
    // lcakp-lint: allow(D002) reason="--smoke flag selects the CI golden output, no entropy involved"
    let smoke_only = std::env::args().any(|arg| arg == "--smoke");
    let root = experiment_root("e14");

    if smoke_only {
        let run = run_smoke(&root).expect("smoke scenario runs");
        println!("{}", run.json);
        return;
    }

    banner(
        "E14",
        "deterministic chaos: the serving runtime keeps its SLO and its answers",
        "Algorithm 2 served concurrently; Theorem 4.1 audited on the fault-free reference",
    );

    let workload_seed = seed_to_u64(&root.derive("e14/workload", 0));
    let norm = WorkloadSpec::new(Family::SmallDominated, N, workload_seed)
        .generate_normalized()
        .expect("workload generates");
    let eps = Epsilon::new(1, 6).expect("valid eps");
    let lca = LcaKp::new(eps)
        .expect("lca builds")
        .with_budget(SampleBudget::Calibrated { factor: 0.002 })
        .with_retry_policy(RetryPolicy { max_retries: 5 });
    let shared_seed = root.derive("e14/shared", 0);

    // A clean full-tier query at these parameters costs well under
    // 400k ticks, so the deadline binds only under injected latency;
    // the cool-down is a handful of cached-tier queries, letting an
    // open breaker recover between bursts.
    let base_config = ServiceConfig {
        workers: 4,
        queue_depth: 32,
        deadline_ticks: 400_000,
        dispatch_cost_ticks: 1,
        cost: CostModel::flat(1),
        backoff: BackoffPolicy::default(),
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown_ticks: 4,
            half_open_probes: 1,
        },
        worker_access_cap: None,
        recovery: RecoveryDiscipline::Faithful,
    };

    // ---- Scenario 1: fault bursts against the availability SLO. ----
    // Bursts cover 8 consecutive batch positions, so every one of the 4
    // workers sees 2 consecutive burst queries per period — enough to
    // trip its breaker (threshold 2) every burst. Blended injected
    // rate: 0.5·0.10 + 0.5·0.50 = 30% of accesses ≥ the 10% floor.
    let burst_plan = ChaosPlan {
        quiet: FaultPlan::transient(0.10),
        burst: FaultPlan {
            transient_rate: 0.5,
            signal_corruption: true,
            corruption_rate: 0.05,
            ..FaultPlan::none()
        },
        burst_period: 16,
        burst_len: 8,
        worker_events: Vec::new(),
    };
    let fault_burst = ChaosScenario {
        label: "fault-burst-slo",
        norm: &norm,
        lca: &lca,
        shared_seed,
        service_root: root.derive("service/fault-burst", 0),
        config: base_config.clone(),
        plan: burst_plan,
    };

    // ---- Scenario 2: hard per-worker budget slices. ----
    let squeeze = ChaosScenario {
        label: "budget-squeeze",
        norm: &norm,
        lca: &lca,
        shared_seed,
        service_root: root.derive("service/budget-squeeze", 0),
        config: ServiceConfig {
            // Admission guarantees the worst case (~2.6M accesses) for
            // every admitted query; the slack above it covers ~10
            // typical queries (~74k accesses each, see the diagnostics
            // below), so each worker answers about a third of its shard
            // and pre-sheds the rest.
            worker_access_cap: Some(lca.worst_case_accesses() + 800_000),
            ..base_config.clone()
        },
        plan: ChaosPlan {
            quiet: FaultPlan::transient(0.05),
            ..ChaosPlan::none()
        },
    };

    // ---- Scenario 3: a latency surge against a tight deadline. ----
    let spike = ChaosScenario {
        label: "latency-spike",
        norm: &norm,
        lca: &lca,
        shared_seed,
        service_root: root.derive("service/latency-spike", 0),
        config: ServiceConfig {
            // 20× latency inside the window: a full query started there
            // needs ~1.5M ticks against a 400k deadline, so it blows the
            // deadline; once the window passes, queries survive again.
            cost: CostModel::flat(1).with_spike(LatencyWindow {
                start_tick: 400_000,
                end_tick: 900_000,
                extra_cost: 19,
            }),
            ..base_config.clone()
        },
        plan: ChaosPlan {
            quiet: FaultPlan::transient(0.02),
            ..ChaosPlan::none()
        },
    };

    let mut table = Table::new([
        "scenario",
        "avail",
        "full",
        "cached",
        "trivial",
        "shed",
        "breaker",
        "retries",
        "identical",
        "consistent",
        "thm(ref)",
        "feasible",
    ]);
    let mut runs = Vec::new();
    for scenario in [&fault_burst, &squeeze, &spike] {
        let (run, identical) = run_twice(scenario);
        table.row([
            run.label.clone(),
            format!("{:.4}", run.availability),
            run.report.tier_count(ResponseTier::Full).to_string(),
            run.report.tier_count(ResponseTier::CachedRule).to_string(),
            run.report.tier_count(ResponseTier::Trivial).to_string(),
            shed_count_of(&run).to_string(),
            run.report.breaker_transitions().to_string(),
            run.report.retries_used().to_string(),
            identical.to_string(),
            run.full_tier_consistent.to_string(),
            run.reference_theorem_ok().to_string(),
            run.chaos_feasible.to_string(),
        ]);
        runs.push((run, identical));
    }
    table.print();

    println!(
        "\nworst-case accesses per query (admission bound): {}",
        lca.worst_case_accesses()
    );
    for (run, _) in &runs {
        println!(
            "{}: chaos accesses {} | reference accesses {}",
            run.label,
            run.report.accesses_used(),
            run.reference.accesses_used(),
        );
    }

    // ---- The E14 acceptance assertions. ----
    let (burst_run, burst_identical) = &runs[0];
    assert!(
        *burst_identical,
        "fault-burst-slo: responses must be byte-identical across runs"
    );
    assert!(
        burst_run.slo_met(SLO),
        "fault-burst-slo: availability {:.4} below the {SLO} SLO",
        burst_run.availability
    );
    assert!(
        burst_run.full_tier_consistent,
        "fault-burst-slo: a full-tier answer diverged from its reference"
    );
    assert!(
        burst_run.reference_theorem_ok(),
        "fault-burst-slo: the fault-free reference must satisfy (1/2, 6eps)"
    );

    let (squeeze_run, squeeze_identical) = &runs[1];
    assert!(*squeeze_identical, "budget-squeeze: nondeterministic");
    assert!(
        shed_count_of(squeeze_run) > 0,
        "budget-squeeze: the cap must force pre-dispatch sheds"
    );
    assert!(
        !any_midflight_budget_exhaustion(squeeze_run),
        "budget-squeeze: admission control must prevent mid-flight exhaustion"
    );
    assert!(squeeze_run.chaos_feasible, "budget-squeeze: infeasible");

    let (spike_run, spike_identical) = &runs[2];
    assert!(*spike_identical, "latency-spike: nondeterministic");
    assert!(spike_run.chaos_feasible, "latency-spike: infeasible");
    assert!(
        spike_run.full_tier_consistent,
        "latency-spike: a full-tier answer diverged from its reference"
    );

    println!(
        "\nExpected shape: bursts degrade their queries (cached tier, breaker trips)\n\
         while quiet-phase queries stay full-tier and availability holds ≥{SLO}; the\n\
         budget cap converts overload into explicit sheds, never mid-flight failures;\n\
         the latency surge costs deadline misses only inside its window. Every\n\
         scenario's JSON is byte-identical across independent runs.\n\n\
         All E14 acceptance assertions passed."
    );
}
