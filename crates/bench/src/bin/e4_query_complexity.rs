//! E4 — Theorem 4.1 / Lemma 4.10: `LCA-KP`'s query complexity is
//! `(1/ε)^{O(log* n)}` — essentially flat in `n`, polynomial in `1/ε`.

use lcakp_bench::{banner, Table};
use lcakp_core::{KnapsackLca, LcaKp};
use lcakp_knapsack::iky::Epsilon;
use lcakp_knapsack::ItemId;
use lcakp_oracle::{InstanceOracle, ItemOracle, Seed};
use lcakp_reproducible::{log_star, SampleBudget};
use lcakp_workloads::{Family, WorkloadSpec};

fn measured_cost(lca: &LcaKp, n: usize, seed: u64) -> (u64, u64) {
    let spec = WorkloadSpec::new(Family::SmallDominated, n, seed);
    let norm = spec.generate_normalized().expect("workload generates");
    let oracle = InstanceOracle::new(&norm);
    let shared = Seed::from_entropy_u64(seed);
    let mut rng = Seed::from_entropy_u64(seed ^ 1).rng();
    let queries = 3u64;
    for q in 0..queries {
        let item = ItemId((q as usize * 37) % n);
        lca.query(&oracle, &mut rng, item, &shared)
            .expect("query succeeds");
    }
    let stats = oracle.stats();
    (
        stats.weighted_samples / queries,
        stats.point_queries / queries,
    )
}

fn main() {
    banner(
        "E4",
        "LCA-KP query complexity: flat in n (log* growth), polynomial in 1/ε",
        "Theorem 4.1, Lemma 4.10",
    );

    let eps = Epsilon::new(1, 4).expect("valid eps");
    println!("Measured accesses per LCA query vs n (ε = 1/4, calibrated budget):");
    let mut table = Table::new([
        "n",
        "log*(2^64-domain)",
        "weighted samples/query",
        "point queries/query",
    ]);
    let lca = LcaKp::new(eps).expect("lca builds");
    for &n in &[1_000usize, 10_000, 100_000, 1_000_000] {
        let (samples, points) = measured_cost(&lca, n, 0xE4);
        table.row([
            n.to_string(),
            log_star(2f64.powi(64)).to_string(),
            samples.to_string(),
            points.to_string(),
        ]);
    }
    table.print();

    println!("\nMeasured accesses per query vs ε (n = 20 000):");
    let mut table = Table::new(["eps", "weighted samples/query", "point queries/query"]);
    for &(num, den) in &[(1u64, 2u64), (1, 3), (1, 4), (1, 6), (1, 8)] {
        let eps = Epsilon::new(num, den).expect("valid eps");
        let lca = LcaKp::new(eps).expect("lca builds");
        let (samples, points) = measured_cost(&lca, 20_000, 0x4E4);
        table.row([
            format!("{num}/{den}"),
            samples.to_string(),
            points.to_string(),
        ]);
    }
    table.print();

    println!("\nTheoretical per-query sample complexity (paper formulas, for reference):");
    let mut table = Table::new(["eps", "coupon m", "rQuantile n_rq (Theoretical)"]);
    for &(num, den) in &[(1u64, 2u64), (1, 4), (1, 10)] {
        let eps = Epsilon::new(num, den).expect("valid eps");
        let paper = LcaKp::with_paper_parameters(eps);
        let params = paper.repro_params();
        let n_rq = SampleBudget::Theoretical.rquantile_samples(&params);
        table.row([
            format!("{num}/{den}"),
            paper.coupon_samples().to_string(),
            if n_rq == u64::MAX {
                "≥ 2^64 (astronomic)".to_string()
            } else {
                n_rq.to_string()
            },
        ]);
    }
    table.print();
    println!(
        "\nExpected shape: measured cost is independent of n (the only n-dependence in\n\
         the theory is the log*|X| exponent, constant at any feasible scale) and grows\n\
         polynomially as ε shrinks."
    );
}
