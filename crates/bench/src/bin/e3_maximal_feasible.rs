//! E3 — Theorem 3.4: even *maximal feasible* answers need ≥ n/11 queries
//! for success 4/5.

use lcakp_bench::{banner, Table};
use lcakp_lowerbounds::maximal_feasible::{run_maximal_experiment, success_cap};

fn main() {
    banner(
        "E3",
        "maximal-feasible LCA with success ≥ 4/5 needs ≥ n/11 queries",
        "Theorem 3.4, Lemma 3.5",
    );

    let trials = 6_000;
    let mut table = Table::new([
        "n",
        "budget",
        "budget/n",
        "success",
        "theoretical cap",
        "clears 4/5",
    ]);
    for &n in &[110usize, 550, 1100] {
        for budget in [
            0u64,
            (n / 22) as u64,
            (n / 11) as u64,
            (n / 4) as u64,
            (n / 2) as u64,
            n as u64,
        ] {
            let rate = run_maximal_experiment(n, budget, trials, 0xE3);
            table.row([
                n.to_string(),
                budget.to_string(),
                format!("{:.3}", budget as f64 / n as f64),
                format!("{:.3}", rate.rate()),
                format!("{:.3}", success_cap(n, budget)),
                if rate.clears(0.8) { "yes" } else { "no" }.to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "\nExpected shape: success starts at ~1/2 (the forced-yes regime of Lemma 3.5),\n\
         stays below 4/5 throughout the sublinear budgets — in particular at the\n\
         theorem's q = n/11 — and approaches 1 only as the budget becomes linear."
    );
}
