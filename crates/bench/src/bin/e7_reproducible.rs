//! E7 — Theorems 2.7 / 4.5: the reproducible median / quantile is
//! ρ-reproducible and τ-accurate; its sample complexity carries the
//! `log* |X|` tower.

use lcakp_bench::{banner, experiment_root, Table};
use lcakp_reproducible::harness::{measure_reproducibility, DiscreteDist};
use lcakp_reproducible::{
    log_star_of_bits, naive_quantile, rquantile, Domain, RQuantileConfig, ReproParams, SampleBudget,
};

fn zoo() -> Vec<(&'static str, DiscreteDist)> {
    vec![
        ("uniform-2^20", DiscreteDist::uniform(1 << 20)),
        (
            "bimodal",
            DiscreteDist::new(vec![(100, 0.5), (1_000_000, 0.5)]),
        ),
        (
            "heavy-atom+uniform",
            DiscreteDist::new(
                (0..1000u128)
                    .map(|v| (v + (1 << 19), 0.0006))
                    .chain(std::iter::once((1000u128, 0.4)))
                    .collect(),
            ),
        ),
        (
            "geometric-ish",
            DiscreteDist::new(
                (0..40u128)
                    .map(|k| (1u128 << k, 0.5f64.powi(k as i32 + 1)))
                    .collect(),
            ),
        ),
    ]
}

fn main() {
    banner(
        "E7",
        "rQuantile is reproducible and τ-accurate; naive quantiles are neither",
        "Theorem 2.7 ([ILPS22, Thm 4.2]), Theorem 4.5, Algorithm 1",
    );

    let tau = 0.05;
    let trials = 25;
    let mut table = Table::new([
        "distribution",
        "p",
        "samples",
        "rq agreement",
        "rq accuracy",
        "naive agreement",
    ]);
    for (name, dist) in zoo() {
        for &p in &[0.5f64, 0.9] {
            for &samples in &[4_000usize, 40_000] {
                let rq = measure_reproducibility(
                    &dist,
                    samples,
                    p,
                    tau,
                    trials,
                    experiment_root("e7").derive("e7/rquantile", samples as u64),
                    |sample, seed| {
                        let config = RQuantileConfig {
                            domain: Domain::new(41).expect("domain fits"),
                            p,
                            tau,
                        };
                        rquantile(sample, &config, seed).expect("rquantile runs")
                    },
                );
                let naive = measure_reproducibility(
                    &dist,
                    samples,
                    p,
                    tau,
                    trials,
                    experiment_root("e7").derive("e7/naive", samples as u64),
                    |sample, _| naive_quantile(sample, p),
                );
                table.row([
                    name.to_string(),
                    format!("{p}"),
                    samples.to_string(),
                    format!("{:.3}", rq.agreement_rate()),
                    format!("{:.3}", rq.accuracy_rate()),
                    format!("{:.3}", naive.agreement_rate()),
                ]);
            }
        }
    }
    table.print();

    println!("\nSample-complexity formulas (paper, Theoretical policy):");
    let mut table = Table::new(["domain bits", "log*|X|", "n_rq at tau=0.2, rho=0.1"]);
    for &bits in &[4u32, 16, 64] {
        let params = ReproParams {
            rho: 0.1,
            tau: 0.2,
            beta: 0.05,
            domain_bits: bits,
        };
        table.row([
            bits.to_string(),
            log_star_of_bits(bits).to_string(),
            SampleBudget::Theoretical
                .rquantile_samples(&params)
                .to_string(),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape: rQuantile agreement near 1 and rising with sample size, with\n\
         accuracy ≈ 1; the naive empirical quantile agrees across fresh samples almost\n\
         never on continuous-like distributions. The theoretical budget grows by a\n\
         (12/τ²) factor per log* level."
    );
}
