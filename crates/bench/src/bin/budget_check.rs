//! `budget_check` — runtime cross-validation of the static
//! probe-budget certificate (`lcakp-lint check --emit-budget`).
//!
//! The certificate claims symbolic worst-case probe bounds per
//! hot-path root. This harness closes the loop against reality:
//!
//! 1. re-derives the certificate from the live tree and diffs it
//!    against the committed golden (the artifact CI's `lint-budget`
//!    job ships);
//! 2. binds the certificate's symbols to a concrete `LcaKp`
//!    configuration and checks the flagship `LcaKp::query_with_audit`
//!    bound evaluates to exactly `worst_case_accesses()`;
//! 3. drives E12-style workload families through `query_with_audit`
//!    on counting oracles, asserting measured accesses ≤ certified
//!    at every single query;
//! 4. replays the E14 smoke chaos scenario and asserts every answered
//!    query's charged accesses stay within the certified
//!    `WorkerCore::serve_step` bound (evaluated under the smoke
//!    scenario's own backoff and retry configuration).
//!
//! Any violation panics, so CI gating is just "the binary exits 0".

use std::path::{Path, PathBuf};

use lcakp_bench::{banner, experiment_root, Table};
use lcakp_core::{LcaKp, RetryPolicy};
use lcakp_knapsack::iky::Epsilon;
use lcakp_knapsack::ItemId;
use lcakp_lint::{render_budget_json, Bound, BudgetAnalysis, RootBudget, Workspace};
use lcakp_oracle::{InstanceOracle, ItemOracle};
use lcakp_reproducible::SampleBudget;
use lcakp_service::{run_smoke, smoke_parts};
use lcakp_workloads::{Family, WorkloadSpec};

fn repo_root() -> PathBuf {
    // crates/bench → crates → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("bench crate lives two levels below the workspace root")
        .to_path_buf()
}

fn certified<'a>(analysis: &'a BudgetAnalysis, root: &str) -> &'a RootBudget {
    analysis
        .roots
        .iter()
        .find(|r| r.root == root)
        .unwrap_or_else(|| panic!("root `{root}` missing from the certificate"))
}

/// Evaluates a symbolic bound under concrete bindings; every symbol
/// must be bound and the result finite, or the certificate and the
/// harness have drifted apart.
fn eval_bound(bound: &Bound, bindings: &[(&str, u64)]) -> u64 {
    bound
        .eval(&|sym| {
            bindings
                .iter()
                .find(|(name, _)| *name == sym)
                .map(|(_, value)| *value)
        })
        .unwrap_or_else(|| {
            panic!(
                "bound `{}` has symbols outside the harness bindings {:?}",
                bound.render(),
                bindings.iter().map(|(n, _)| *n).collect::<Vec<_>>()
            )
        })
}

fn main() {
    banner(
        "BUDGET",
        "the static probe-budget certificate upper-bounds every measured query",
        "Definition 2.2 access accounting; Theorem 4.1 probe complexity",
    );

    // ---- 1. Certificate vs committed golden. ----
    let repo = repo_root();
    let ws = Workspace::from_root(&repo).expect("lint workspace builds");
    let analysis = ws.budget();
    let rendered = render_budget_json(analysis);
    let golden_path = repo.join("crates/lint/tests/golden/budget_certificate.json");
    let golden = std::fs::read_to_string(&golden_path)
        .unwrap_or_else(|error| panic!("{}: unreadable: {error}", golden_path.display()));
    assert_eq!(
        rendered, golden,
        "live budget certificate drifted from the committed golden — \
         regenerate with LCAKP_LINT_REGEN_GOLDEN=1 cargo test -p lcakp-lint"
    );
    println!(
        "certificate: {} roots, matches committed golden\n",
        analysis.roots.len()
    );

    // ---- 2. Flagship bound ≡ worst_case_accesses(). ----
    let eps = Epsilon::new(1, 8).expect("valid eps");
    let lca = LcaKp::new(eps)
        .expect("lca builds")
        .with_budget(SampleBudget::Calibrated { factor: 0.002 })
        .with_retry_policy(RetryPolicy { max_retries: 3 });
    let bindings = [
        (
            "retry-attempts",
            1 + u64::from(lca.retry_policy().max_retries),
        ),
        ("coupon-samples", lca.coupon_samples()),
        ("eps-estimation-samples", lca.eps_estimation_samples_cap()),
    ];
    let query_bound = eval_bound(
        &certified(analysis, "LcaKp::query_with_audit").probes,
        &bindings,
    );
    assert_eq!(
        query_bound,
        lca.worst_case_accesses(),
        "certified query bound and worst_case_accesses() disagree"
    );

    // ---- 3. E12-style workloads through counting oracles. ----
    let root = experiment_root("budget-check");
    let n = 120;
    let mut table = Table::new(["workload", "queries", "max measured", "certified"]);
    for (label, family) in [
        ("uncorrelated", Family::Uncorrelated { range: 100 }),
        ("subset-sum", Family::SubsetSum { range: 100 }),
        ("small-dominated", Family::SmallDominated),
    ] {
        let norm = WorkloadSpec::new(family, n, 0xB0D6)
            .generate_normalized()
            .expect("workload generates");
        let oracle = InstanceOracle::new(&norm);
        let shared_seed = root.derive("budget-check/shared-seed", 0);
        let mut rng = root.derive("budget-check/sampling", 0).rng();
        let queries = 16u64;
        let mut max_measured = 0u64;
        for i in 0..queries {
            let before = oracle.stats();
            let item = ItemId((i as usize * 7) % norm.len());
            lca.query_with_audit(&oracle, &mut rng, item, &shared_seed)
                .expect("query runs");
            let measured = oracle.stats().since(before).total();
            assert!(
                measured <= query_bound,
                "{label}: query {i} measured {measured} accesses, certified {query_bound}"
            );
            max_measured = max_measured.max(measured);
        }
        table.row([
            label.to_string(),
            queries.to_string(),
            max_measured.to_string(),
            query_bound.to_string(),
        ]);
    }

    // ---- 4. The E14 smoke path against the serve_step bound. ----
    let smoke_root = experiment_root("e14");
    let parts = smoke_parts(&smoke_root).expect("smoke parts build");
    let serve_bindings = [
        (
            "retry-attempts",
            1 + u64::from(parts.lca.retry_policy().max_retries),
        ),
        ("coupon-samples", parts.lca.coupon_samples()),
        (
            "eps-estimation-samples",
            parts.lca.eps_estimation_samples_cap(),
        ),
        (
            "backoff-max-attempts",
            u64::from(parts.config.backoff.max_attempts),
        ),
    ];
    let serve_bound = eval_bound(
        &certified(analysis, "WorkerCore::serve_step").probes,
        &serve_bindings,
    );
    let run = run_smoke(&smoke_root).expect("smoke scenario runs");
    let mut answered = 0u64;
    let mut max_accesses = 0u64;
    for outcome in &run.report.outcomes {
        let Some(answer) = outcome.disposition.answered() else {
            continue;
        };
        answered += 1;
        assert!(
            answer.accesses <= serve_bound,
            "smoke query {} charged {} accesses, certified serve_step bound {serve_bound}",
            outcome.index,
            answer.accesses
        );
        max_accesses = max_accesses.max(answer.accesses);
    }
    assert!(answered > 0, "smoke scenario answered nothing");
    table.row([
        "e14-smoke serve_step".to_string(),
        answered.to_string(),
        max_accesses.to_string(),
        serve_bound.to_string(),
    ]);

    table.print();
    println!(
        "\nEvery measured query stayed within its certified static bound: the\n\
         budget certificate is a true upper bound on runtime oracle accesses."
    );
}
