//! E5 — Theorem 4.1 / Lemmas 4.7–4.8: the assembled solution is feasible
//! and `(1/2, 6ε)`-approximate.

use lcakp_bench::{banner, experiment_root, Table};
use lcakp_core::solution_audit::assemble_and_audit;
use lcakp_core::LcaKp;
use lcakp_knapsack::iky::Epsilon;
use lcakp_workloads::standard_suite;

fn main() {
    banner(
        "E5",
        "assembled LCA-KP answers form a feasible (1/2, 6ε)-approximate solution",
        "Theorem 4.1, Lemma 4.7 (feasibility), Lemma 4.8 (value)",
    );

    let n = 120;
    let mut table = Table::new([
        "workload",
        "eps",
        "OPT",
        "value",
        "ratio",
        "feasible",
        "half-slack",
        "6eps",
        "within bound",
    ]);
    for spec in standard_suite(n, 0xE5) {
        let norm = match spec.generate_normalized() {
            Ok(norm) => norm,
            Err(err) => {
                eprintln!("skipping {spec}: {err}");
                continue;
            }
        };
        // ε ≤ 1/6: the paper's small-item cut-off needs k ≥ 3, which
        // needs t = ⌊1/q⌋ ≥ 4 — at ε ≥ 1/4 the algorithm (correctly, per
        // Algorithm 3) returns only large items, and the 6ε bound is
        // vacuous anyway. Budget factors shrink with ε to keep runtime
        // bounded; E6 reports the consistency cost of that.
        for &(num, den, factor) in &[(1u64, 8u64, 0.002f64)] {
            let eps = Epsilon::new(num, den).expect("valid eps");
            let lca = LcaKp::new(eps)
                .expect("lca builds")
                .with_budget(lcakp_reproducible::SampleBudget::Calibrated { factor });
            let root = experiment_root("e5");
            let mut rng = root.derive("e5/sampling", den).rng();
            let audit = match assemble_and_audit(
                &lca,
                &norm,
                &mut rng,
                &root.derive("e5/shared-seed", 0),
            ) {
                Ok(audit) => audit,
                Err(err) => {
                    eprintln!("skipping {spec} at ε={num}/{den}: {err}");
                    continue;
                }
            };
            table.row([
                spec.family.to_string(),
                format!("{num}/{den}"),
                audit.optimum.to_string(),
                audit.value.to_string(),
                format!("{:.3}", audit.ratio),
                audit.feasible.to_string(),
                format!("{:.4}", audit.half_slack),
                format!("{:.4}", 6.0 * eps.as_f64()),
                audit.satisfies_theorem(eps).to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "\nExpected shape: every row is feasible and 'within bound' — value is at least\n\
         OPT/2 − 6ε in normalized units (most rows do far better than 1/2)."
    );
}
