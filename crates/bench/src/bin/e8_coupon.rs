//! E8 — Lemma 4.2: `⌈6δ⁻¹(log δ⁻¹ + 1)⌉` weighted samples collect every
//! item of profit mass ≥ δ with probability ≥ 5/6.

use lcakp_bench::{banner, experiment_root, Table};
use lcakp_knapsack::{Instance, NormalizedInstance};
use lcakp_oracle::{InstanceOracle, OracleError, WeightedSampler};
use std::collections::HashSet;

/// Instance with `heavy` items of normalized mass ≈ δ each plus filler.
fn heavy_instance(heavy: usize, delta_inverse: u64) -> NormalizedInstance {
    // heavy items of profit D each; filler items of total profit
    // heavy·D·(delta_inverse/heavy − 1) spread over many units.
    let heavy_profit = 1_000u64;
    let total_target = heavy_profit * delta_inverse;
    let filler_total = total_target - heavy_profit * heavy as u64;
    let filler_count = 2_000usize;
    let per_filler = (filler_total / filler_count as u64).max(1);
    let mut pairs: Vec<(u64, u64)> = (0..heavy).map(|_| (heavy_profit, 5)).collect();
    pairs.extend((0..filler_count).map(|_| (per_filler, 1)));
    NormalizedInstance::new(Instance::from_pairs(pairs, 100).expect("instance builds"))
        .expect("normalizes")
}

fn main() -> Result<(), OracleError> {
    banner(
        "E8",
        "coupon collection: the Lemma 4.2 sample count finds every δ-heavy item w.p. ≥ 5/6",
        "Lemma 4.2 ([IKY12, Lemma 2])",
    );

    let trials = 600;
    let mut table = Table::new([
        "delta",
        "heavy items",
        "m = ceil(6/δ·(ln(1/δ)+1))",
        "all-collected rate",
        "clears 5/6",
    ]);
    for &(delta_inverse, heavy) in &[(10u64, 5usize), (20, 10), (50, 20), (100, 40)] {
        let delta = 1.0 / delta_inverse as f64;
        let m = (6.0 * delta_inverse as f64 * ((delta_inverse as f64).ln() + 1.0)).ceil() as u64;
        let norm = heavy_instance(heavy, delta_inverse);
        let oracle = InstanceOracle::new(&norm);
        // Heavy ids are the first `heavy` items by construction; confirm
        // their mass is ≥ δ.
        let total = norm.total_profit() as f64;
        for index in 0..heavy {
            let mass = norm.item(lcakp_knapsack::ItemId(index)).profit as f64 / total;
            assert!(
                mass >= delta * 0.99,
                "construction broke: mass {mass} < δ {delta}"
            );
        }
        let mut successes = 0u64;
        let mut rng = experiment_root("e8")
            .derive("e8/sampling", delta_inverse)
            .rng();
        for _ in 0..trials {
            let mut seen: HashSet<usize> = HashSet::new();
            for _ in 0..m {
                let (id, _) = oracle.try_sample_weighted(&mut rng)?;
                if id.index() < heavy {
                    seen.insert(id.index());
                }
            }
            if seen.len() == heavy {
                successes += 1;
            }
        }
        let rate = successes as f64 / trials as f64;
        table.row([
            format!("1/{delta_inverse}"),
            heavy.to_string(),
            m.to_string(),
            format!("{rate:.3}"),
            if rate >= 5.0 / 6.0 { "yes" } else { "no" }.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape: every row clears the 5/6 success floor of Lemma 4.2 (the\n\
         bound is loose; measured rates are typically ≥ 0.95)."
    );
    Ok(())
}
