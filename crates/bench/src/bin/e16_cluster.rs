//! E16 — simulated multi-node cluster: replica failover, partition
//! tolerance, and node-level fault simulation.
//!
//! The cluster simulator (`lcakp-sim::cluster`) runs each case twice —
//! the faulted run and its fault-free twin — and checks that node
//! crashes, torn journal shipping, restarts, and network partitions
//! are *byte-invisible*: every outcome equals the twin's (shards that
//! genuinely lost every reachable replica excepted, which shed with
//! typed `node-unreachable` / `partitioned` reasons), no query is
//! silently dropped, shipped journals stay decodable and monotone, the
//! routing audit trail never records a shed while a live replica was
//! reachable, and every surviving replica's standalone replay agrees
//! byte-for-byte with the answers the cluster acknowledged (Theorem
//! 4.1's consistency guarantee is what makes replication free).
//!
//! Two demonstrations:
//!
//! * the default seed range under faithful routing reports **zero**
//!   invariant violations while mixing crashes, restarts, and
//!   partitions;
//! * the deliberately planted stale-ring routing bug (the router
//!   consults boot-time membership and refuses to promote replicas) is
//!   caught and auto-shrunk to a minimal replayable repro.
//!
//! `--smoke` prints only the committed smoke range's canonical JSON
//! for CI to diff against `crates/sim/tests/golden/e16_smoke.json`.

use lcakp_bench::{banner, experiment_root, Table};
use lcakp_service::RoutingDiscipline;
use lcakp_sim::{run_cluster_range, run_cluster_smoke, ClusterSimConfig, SimEvent, Violation};

/// Cases the full (non-smoke) demonstration covers.
const DEFAULT_CASES: u64 = 12;

fn main() {
    // lcakp-lint: allow(D002) reason="--smoke flag selects the CI golden output, no entropy involved"
    let smoke_only = std::env::args().any(|arg| arg == "--smoke");
    let root = experiment_root("e16");

    if smoke_only {
        let json = run_cluster_smoke(&root).expect("smoke range runs");
        println!("{json}");
        return;
    }

    banner(
        "E16",
        "simulated cluster: failover and partitions are byte-invisible, and a stale router shrinks",
        "Definition 2.4 statelessness makes replication free; failover ships only the journal",
    );

    // ---- Part 1: faithful routing survives the default range. ----
    let config = ClusterSimConfig::default();
    let report = run_cluster_range(&root, &config, 0..DEFAULT_CASES).expect("range runs");
    let mut table = Table::new([
        "case",
        "events",
        "node-crashes",
        "failovers",
        "answered",
        "shed",
        "violations",
    ]);
    for case in &report.cases {
        let events = case
            .events
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("; ");
        table.row([
            case.case.to_string(),
            events,
            case.stats.node_crashes.to_string(),
            case.stats.failovers.to_string(),
            case.stats.answered.to_string(),
            case.stats.shed.to_string(),
            case.violations.len().to_string(),
        ]);
    }
    table.print();
    assert_eq!(
        report.total_violations(),
        0,
        "faithful routing must survive the default seed range"
    );
    let crashes: usize = report
        .cases
        .iter()
        .map(|case| case.stats.node_crashes)
        .sum();
    let failovers: usize = report.cases.iter().map(|case| case.stats.failovers).sum();
    assert!(crashes > 0, "the range must actually kill nodes");
    assert!(failovers > 0, "the range must actually fail shards over");
    assert!(
        report.cases.iter().any(|case| case
            .events
            .iter()
            .any(|event| matches!(event, SimEvent::Partition { .. }))),
        "the range must include at least one partition"
    );
    assert!(
        report.cases.iter().any(|case| case
            .events
            .iter()
            .any(|event| matches!(event, SimEvent::NodeRestart { .. }))),
        "the range must include at least one node restart"
    );
    println!(
        "\n{DEFAULT_CASES} cases, {crashes} node crashes fired, {failovers} shard failovers, \
         0 invariant violations."
    );

    // ---- Part 2: the planted stale-ring routing bug shrinks. ----
    let buggy = ClusterSimConfig {
        routing: RoutingDiscipline::StaleRing,
        ..ClusterSimConfig::default()
    };
    let buggy_report =
        run_cluster_range(&root, &buggy, 0..DEFAULT_CASES).expect("buggy range runs");
    let repro = buggy_report
        .repro
        .as_ref()
        .expect("stale-ring routing must violate within the range");
    println!(
        "\nplanted bug {} caught: {} violating case(s) in the range",
        buggy.routing,
        buggy_report
            .cases
            .iter()
            .filter(|case| !case.violations.is_empty())
            .count()
    );
    print!("{}", repro.render());
    assert!(
        repro.shrunk.events.len() <= 3,
        "the shrunk repro must be minimal"
    );
    assert!(repro
        .shrunk
        .events
        .iter()
        .any(|event| matches!(event, SimEvent::NodeCrash { .. })));
    assert!(repro
        .shrunk
        .violations
        .iter()
        .any(|violation| matches!(violation, Violation::ShedWithLiveReplica { .. })));

    println!(
        "\nExpected shape: every faithful case matches its fault-free twin byte for byte\n\
         (node-unreachable/partitioned sheds excepted for shards that truly lost every\n\
         reachable replica), while the planted stale-ring router sheds work the audit\n\
         trail proves a live replica could have served, and shrinks to a bare\n\
         node-crash repro.\n\n\
         All E16 acceptance assertions passed."
    );
}
