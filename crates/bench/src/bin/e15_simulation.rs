//! E15 — VOPR-style simulation: the crash–recovery layer of
//! `lcakp-service` under seed-derived randomized fault schedules.
//!
//! The simulator (`lcakp-sim`) runs each case twice — the faulted run
//! and its crash-free twin — and checks that crashes, torn journal
//! writes, and restarts are *byte-invisible*: every outcome equals the
//! twin's (dead workers excepted, whose shard tails shed with a typed
//! `worker-crashed` reason), every acknowledged answer is journaled,
//! journals decode cleanly, and no query is silently dropped.
//!
//! Two demonstrations:
//!
//! * the default seed range under faithful recovery reports **zero**
//!   invariant violations;
//! * a deliberately planted recovery bug (skipping journal replay)
//!   is caught and auto-shrunk to a minimal replayable repro.
//!
//! `--smoke` prints only the committed smoke range's canonical JSON
//! for CI to diff against `crates/sim/tests/golden/e15_smoke.json`.

use lcakp_bench::{banner, experiment_root, Table};
use lcakp_service::RecoveryDiscipline;
use lcakp_sim::{run_range, run_smoke, SimConfig, SimEvent};

/// Cases the full (non-smoke) demonstration covers.
const DEFAULT_CASES: u64 = 12;

fn main() {
    // lcakp-lint: allow(D002) reason="--smoke flag selects the CI golden output, no entropy involved"
    let smoke_only = std::env::args().any(|arg| arg == "--smoke");
    let root = experiment_root("e15");

    if smoke_only {
        let json = run_smoke(&root).expect("smoke range runs");
        println!("{json}");
        return;
    }

    banner(
        "E15",
        "deterministic simulation: crash-recovery is byte-invisible, and planted bugs shrink",
        "Theorem 4.1 consistency pushed through worker death; ARVX-style cheap per-query state",
    );

    // ---- Part 1: faithful recovery survives the default range. ----
    let config = SimConfig::default();
    let report = run_range(&root, &config, 0..DEFAULT_CASES).expect("range runs");
    let mut table = Table::new([
        "case",
        "events",
        "crashes",
        "answered",
        "shed",
        "violations",
    ]);
    for case in &report.cases {
        let events = case
            .events
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("; ");
        table.row([
            case.case.to_string(),
            events,
            case.stats.crashes.to_string(),
            case.stats.answered.to_string(),
            case.stats.shed.to_string(),
            case.violations.len().to_string(),
        ]);
    }
    table.print();
    assert_eq!(
        report.total_violations(),
        0,
        "faithful recovery must survive the default seed range"
    );
    let fired: usize = report.cases.iter().map(|case| case.stats.crashes).sum();
    assert!(fired > 0, "the range must actually kill workers");
    println!("\n{DEFAULT_CASES} cases, {fired} worker crashes fired, 0 invariant violations.");

    // ---- Part 2: a planted recovery bug is caught and shrunk. ----
    let buggy = SimConfig {
        recovery: RecoveryDiscipline::SkipJournalReplay,
        ..SimConfig::default()
    };
    let buggy_report = run_range(&root, &buggy, 0..DEFAULT_CASES).expect("buggy range runs");
    let repro = buggy_report
        .repro
        .as_ref()
        .expect("skip-journal-replay must violate within the range");
    println!(
        "\nplanted bug {} caught: {} violating case(s) in the range",
        buggy.recovery,
        buggy_report
            .cases
            .iter()
            .filter(|case| !case.violations.is_empty())
            .count()
    );
    print!("{}", repro.render());
    assert!(
        repro.shrunk.events.len() <= 5,
        "the shrunk repro must be minimal"
    );
    assert!(repro
        .shrunk
        .events
        .iter()
        .any(|event| matches!(event, SimEvent::Crash { .. })));

    println!(
        "\nExpected shape: every faithful case matches its crash-free twin byte for byte\n\
         (worker-crashed sheds excepted for unrevived workers), while the planted\n\
         skip-journal-replay bug silently drops pre-crash answers and shrinks to a\n\
         bare crash(+restart) repro.\n\n\
         All E15 acceptance assertions passed."
    );
}
