//! E1 — Theorem 3.2 / Figure 1: no sublinear-query LCA for exact
//! Knapsack; weighted sampling escapes the wall with O(1) samples.

use lcakp_bench::{banner, Table};
use lcakp_lowerbounds::or_reduction;

fn main() {
    banner(
        "E1",
        "exact Knapsack LCA needs Ω(n) point queries; O(1) weighted samples suffice",
        "Theorem 3.2, Lemma 3.1, Figure 1; Section 4 (weighted sampling model)",
    );

    let trials = 4_000;
    println!("Point-query strategy on the hard OR distribution (target 2/3):");
    let mut table = Table::new(["n", "budget", "budget/n", "success", "clears 2/3"]);
    for &n in &[256usize, 1024, 4096] {
        for frac_percent in [0u64, 5, 10, 20, 33, 50, 100] {
            let budget = (n as u64 * frac_percent) / 100;
            let rate = or_reduction::run_point_query_experiment(n, budget, trials, 0xE1);
            table.row([
                n.to_string(),
                budget.to_string(),
                format!("{:.2}", frac_percent as f64 / 100.0),
                format!("{:.3}", rate.rate()),
                if rate.clears(2.0 / 3.0) { "yes" } else { "no" }.to_string(),
            ]);
        }
    }
    table.print();

    println!("\nWeighted-sampling strategy (same task, constant budget):");
    let mut table = Table::new(["n", "samples", "success"]);
    for &n in &[256usize, 4096, 65_536] {
        for &samples in &[1u64, 2, 4, 8] {
            let rate = or_reduction::run_weighted_sampling_experiment(n, samples, trials, 0x1E1);
            table.row([
                n.to_string(),
                samples.to_string(),
                format!("{:.3}", rate.rate()),
            ]);
        }
    }
    table.print();
    println!(
        "\nExpected shape: point-query success ≈ 1/2 + q/(2(n−1)) — crossing 2/3 only at\n\
         q ≈ n/3 (the Ω(n) wall) — while weighted sampling crosses it at a constant\n\
         budget independent of n."
    );
}
