//! Performance point zero: throughput and latency of the serving
//! stack, written to `BENCH_e14.json` at the workspace root.
//!
//! Two measured sections, both on the exact E14 world (same family,
//! size, ε, budget, and service tuning as `e14_chaos`, chaos plan
//! removed):
//!
//! * **core** — the [`LcaKp::query_with_audit_in`] hot loop: one
//!   reused scratch, steady-state, the path every serving worker runs
//!   per query;
//! * **serving** — the full e14 batch path ([`serve_batch`]: admission,
//!   dispatch, breaker, deadline accounting, journal) with 4 workers.
//!
//! Each section reports wall-clock queries/sec *and* virtual-tick
//! latency. The two clocks are deliberately separate: wall-clock
//! throughput is the machine-dependent number future PRs diff against,
//! while virtual ticks (mean per-query `end_tick − start_tick`, plus
//! mean counted oracle accesses) are deterministic and must only move
//! when an algorithmic change moves them.
//!
//! The JSON is canonical — fixed field order, integers only — but the
//! wall-clock fields vary run to run, so the file is a committed
//! *snapshot*, not a CI-diffed golden.

use std::time::Instant;

use lcakp_bench::experiment_root;
use lcakp_core::{LcaKp, QueryScratch, RetryPolicy};
use lcakp_knapsack::iky::Epsilon;
use lcakp_knapsack::ItemId;
use lcakp_oracle::InstanceOracle;
use lcakp_reproducible::SampleBudget;
use lcakp_service::{
    seed_to_u64, serve_batch, BackoffPolicy, BreakerConfig, CostModel, RecoveryDiscipline,
    ServiceConfig,
};
use lcakp_workloads::{Family, WorkloadSpec};

/// The E14 instance size.
const N: usize = 120;
/// Core-loop repetitions over the full item universe.
const CORE_PASSES: usize = 8;
/// Serving-path repetitions of the full batch.
const SERVE_PASSES: usize = 4;

/// Integer queries/sec from a query count and elapsed nanoseconds.
fn qps(queries: u64, nanos: u128) -> u64 {
    if nanos == 0 {
        return 0;
    }
    u64::try_from(u128::from(queries) * 1_000_000_000 / nanos).unwrap_or(u64::MAX)
}

fn main() {
    let root = experiment_root("e14");

    // The exact e14 world: workload, ε, budget, retry policy.
    let workload_seed = seed_to_u64(&root.derive("bench-perf/workload", 0));
    let norm = WorkloadSpec::new(Family::SmallDominated, N, workload_seed)
        .generate_normalized()
        .expect("workload generates");
    let oracle = InstanceOracle::new(&norm);
    let eps = Epsilon::new(1, 6).expect("valid eps");
    let lca = LcaKp::new(eps)
        .expect("lca builds")
        .with_budget(SampleBudget::Calibrated { factor: 0.002 })
        .with_retry_policy(RetryPolicy { max_retries: 5 });
    let shared_seed = root.derive("bench-perf/shared", 0);

    // ---- Section 1: the core query_with_audit_in hot loop. ----
    let mut rng = root.derive("bench-perf/sampling", 0).rng();
    let mut scratch = QueryScratch::default();
    lca.query_with_audit_in(&oracle, &mut rng, ItemId(0), &shared_seed, &mut scratch)
        .expect("warm-up query sizes the scratch");
    let core_queries = (N * CORE_PASSES) as u64;
    let mut core_accesses = 0u64;
    let start = Instant::now();
    for pass in 0..CORE_PASSES {
        for index in 0..N {
            let item = ItemId((index + pass) % N);
            let (_, audit) = lca
                .query_with_audit_in(&oracle, &mut rng, item, &shared_seed, &mut scratch)
                .expect("steady-state query");
            core_accesses += audit.budget_consumed;
        }
    }
    let core_nanos = start.elapsed().as_nanos();
    let core_qps = qps(core_queries, core_nanos);
    let core_mean_accesses = core_accesses / core_queries;

    // ---- Section 2: the e14 serving path, chaos plan removed. ----
    let config = ServiceConfig {
        workers: 4,
        queue_depth: 32,
        deadline_ticks: 400_000,
        dispatch_cost_ticks: 1,
        cost: CostModel::flat(1),
        backoff: BackoffPolicy::default(),
        breaker: BreakerConfig {
            failure_threshold: 2,
            cooldown_ticks: 4,
            half_open_probes: 1,
        },
        worker_access_cap: None,
        recovery: RecoveryDiscipline::Faithful,
    };
    let queries: Vec<ItemId> = (0..N).map(ItemId).collect();
    let service_root = root.derive("bench-perf/serving", 0);
    let mut serve_ticks = 0u64;
    let mut serve_answered = 0u64;
    let start = Instant::now();
    for _ in 0..SERVE_PASSES {
        let report = serve_batch(
            &lca,
            &oracle,
            &shared_seed,
            &service_root,
            &queries,
            &config,
            None,
        )
        .expect("serving batch runs");
        for outcome in &report.outcomes {
            if let Some(answered) = outcome.disposition.answered() {
                serve_ticks += answered.end_tick - answered.start_tick;
                serve_answered += 1;
            }
        }
    }
    let serve_nanos = start.elapsed().as_nanos();
    let serve_queries = (N * SERVE_PASSES) as u64;
    let serve_qps = qps(serve_queries, serve_nanos);
    assert_eq!(
        serve_answered, serve_queries,
        "the chaos-free serving path must answer every query"
    );
    let serve_mean_ticks = serve_ticks / serve_answered;

    let json = format!(
        "{{\n  \"label\": \"bench-e14-baseline\",\n  \"n\": {N},\n  \"eps\": \"1/6\",\n  \
         \"core\": {{\n    \"queries\": {core_queries},\n    \"qps\": {core_qps},\n    \
         \"mean_oracle_accesses\": {core_mean_accesses}\n  }},\n  \"serving\": {{\n    \
         \"workers\": {workers},\n    \"queries\": {serve_queries},\n    \"qps\": {serve_qps},\n    \
         \"mean_latency_ticks\": {serve_mean_ticks}\n  }}\n}}",
        workers = config.workers,
    );
    // The workspace root is two levels above the bench crate.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e14.json");
    std::fs::write(path, format!("{json}\n")).expect("baseline file writes");
    println!("{json}");
}
