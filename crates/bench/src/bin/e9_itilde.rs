//! E9 — Definition 4.3 / Lemma 4.4: the EPS construction balances bucket
//! masses, and `OPT(Ĩ) − ε` is a `(1, 6ε)`-approximation of `OPT(I)`.

use lcakp_bench::{banner, experiment_root, Table};
use lcakp_core::iky_value::iky_value_estimate;
use lcakp_knapsack::iky::{
    exact_eps, tilde_optimum, verify_eps, Epsilon, Partition, TildeInstance, MU_SHIFT,
};
use lcakp_knapsack::solvers;
use lcakp_oracle::InstanceOracle;
use lcakp_workloads::standard_suite;

fn main() {
    banner(
        "E9",
        "OPT(Ĩ) tracks OPT(I) within 6ε; exact EPS buckets sit in [ε, ε+ε²)",
        "Definition 4.3, Lemma 4.4 ([IKY12, Lemma 1])",
    );

    let n = 250;
    let mut table = Table::new([
        "workload",
        "eps",
        "EPS len",
        "EPS valid",
        "OPT(I)/P",
        "OPT(Ĩ)",
        "|diff|",
        "<= 6eps",
    ]);
    for spec in standard_suite(n, 0xE9) {
        let norm = match spec.generate_normalized() {
            Ok(norm) => norm,
            Err(err) => {
                eprintln!("skipping {spec}: {err}");
                continue;
            }
        };
        let optimum = match solvers::dp_by_weight(norm.as_instance()) {
            Ok(outcome) => outcome.value,
            Err(_) => continue,
        };
        let normalized_opt = optimum as f64 / norm.total_profit() as f64;
        for &(num, den) in &[(1u64, 4u64), (1, 8)] {
            let eps = Epsilon::new(num, den).expect("valid eps");
            let partition = Partition::compute(&norm, eps);
            let seq = exact_eps(&norm, eps, &partition);
            let verification = verify_eps(&norm, eps, &partition, &seq);
            let tilde = TildeInstance::build_from_instance(&norm, eps, partition.large(), &seq);
            let Some(opt_mu) = tilde_optimum(&tilde) else {
                continue;
            };
            let tilde_opt = opt_mu as f64 / (1u128 << MU_SHIFT) as f64;
            let diff = (tilde_opt - normalized_opt).abs();
            table.row([
                spec.family.to_string(),
                format!("{num}/{den}"),
                seq.len().to_string(),
                verification.is_eps.to_string(),
                format!("{normalized_opt:.4}"),
                format!("{tilde_opt:.4}"),
                format!("{diff:.4}"),
                (diff <= 6.0 * eps.as_f64() + 1e-9).to_string(),
            ]);
        }
    }
    table.print();

    println!("\nSampled IKY12 value estimates (the [IKY12] algorithm end to end):");
    let mut table = Table::new(["workload", "eps", "estimate", "OPT/P", "|err|", "<= 7eps"]);
    for spec in standard_suite(n, 0x9E9).into_iter().take(5) {
        let norm = match spec.generate_normalized() {
            Ok(norm) => norm,
            Err(_) => continue,
        };
        let optimum = match solvers::dp_by_weight(norm.as_instance()) {
            Ok(outcome) => outcome.value,
            Err(_) => continue,
        };
        let normalized_opt = optimum as f64 / norm.total_profit() as f64;
        let eps = Epsilon::new(1, 4).expect("valid eps");
        let oracle = InstanceOracle::new(&norm);
        let mut rng = experiment_root("e9").derive("e9/sampling", 0).rng();
        let estimate = iky_value_estimate(&oracle, &mut rng, eps, 60_000).expect("estimate runs");
        let err = (estimate.value - normalized_opt).abs();
        table.row([
            spec.family.to_string(),
            "1/4".to_string(),
            format!("{:.4}", estimate.value),
            format!("{normalized_opt:.4}"),
            format!("{err:.4}"),
            (err <= 7.0 * eps.as_f64()).to_string(),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape: the exact-EPS rows all verify and sit within the 6ε band; the\n\
         sampled estimates stay within ~7ε (6ε plus sampling noise)."
    );
}
