//! E17 — open-loop traffic, SLO tracking, and adaptive admission
//! control.
//!
//! The SLO simulator (`lcakp-sim::slo`) derives seed-replayable
//! open-loop arrival traces — steady, diurnal, bursty, hot-shard, and
//! query-of-death shapes, optionally compressed by an overload surge —
//! and serves them through the full runtime twice per case: once under
//! the adaptive admission controller and once through its
//! admission-free twin. Three invariants are checked against the pair:
//! every `overload(...)` shed is *honest* (its recorded signal really
//! crossed a threshold), the controller never flips state twice within
//! its hysteresis window, and traffic the twin proves is under capacity
//! is never overload-shed. This is only safe because queries are
//! stateless and query-order oblivious (Definition 2.4): shedding or
//! reordering arrivals cannot change any other answer, so admission
//! control composes with Theorem 4.1's guarantee for free.
//!
//! Two demonstrations:
//!
//! * the faithful controller survives the default seed range with zero
//!   violations while meeting every scenario's availability SLO;
//! * the deliberately planted non-hysteretic controller (reacts to the
//!   instantaneous signal, ignoring the dwell window) is caught
//!   flapping and auto-shrunk to a minimal replayable repro.
//!
//! `--smoke` prints only the committed smoke range's canonical JSON
//! for CI to diff against `crates/sim/tests/golden/e17_smoke.json`.

use lcakp_bench::{banner, experiment_root, Table};
use lcakp_service::AdmissionDiscipline;
use lcakp_sim::{run_slo_range, run_slo_smoke, SimEvent, SloSimConfig, Violation, E17_SMOKE_CASES};

fn main() {
    // lcakp-lint: allow(D002) reason="--smoke flag selects the CI golden output, no entropy involved"
    let smoke_only = std::env::args().any(|arg| arg == "--smoke");
    let root = experiment_root("e17");

    if smoke_only {
        let json = run_slo_smoke(&root).expect("smoke range runs");
        println!("{json}");
        return;
    }

    banner(
        "E17",
        "adaptive admission meets its SLOs under open-loop traffic, and a flapping controller shrinks",
        "Definition 2.4 obliviousness makes shedding safe; the signal decides only *whether*, never *what*",
    );

    // ---- Part 1: the faithful controller survives the range. ----
    let config = SloSimConfig::default();
    let report = run_slo_range(&root, &config, 0..E17_SMOKE_CASES).expect("range runs");
    let mut table = Table::new([
        "case",
        "events",
        "answered",
        "shed",
        "missed",
        "avail",
        "target",
        "flips",
        "violations",
    ]);
    for case in &report.cases {
        let events = case
            .events
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("; ");
        table.row([
            case.case.to_string(),
            events,
            case.stats.answered.to_string(),
            case.stats.shed.to_string(),
            case.stats.deadline_missed.to_string(),
            format!("{}/1000", case.stats.availability_permille),
            format!("{}/1000", case.stats.slo_target_permille),
            case.stats.transitions.to_string(),
            case.violations.len().to_string(),
        ]);
    }
    table.print();
    assert_eq!(
        report.total_violations(),
        0,
        "the faithful controller must survive the default seed range"
    );
    assert!(
        report.all_meet_slo(),
        "every scenario must meet its availability SLO target"
    );
    let sheds: u64 = report.cases.iter().map(|case| case.stats.shed).sum();
    let flips: usize = report.cases.iter().map(|case| case.stats.transitions).sum();
    assert!(
        sheds > 0,
        "the range must actually push some scenario into overload"
    );
    assert!(
        flips > 0,
        "the controller must actually enter and leave overload"
    );
    assert!(
        report.cases.iter().any(|case| case
            .events
            .iter()
            .any(|event| matches!(event, SimEvent::OverloadSurge { .. }))),
        "the range must include at least one overload surge"
    );
    println!(
        "\n{E17_SMOKE_CASES} cases, {sheds} queries shed, {flips} controller transitions, \
         0 invariant violations, every availability SLO met."
    );

    // ---- Part 2: the planted non-hysteretic controller shrinks. ----
    let buggy = SloSimConfig {
        discipline: AdmissionDiscipline::NoHysteresis,
        ..SloSimConfig::default()
    };
    let buggy_report = run_slo_range(&root, &buggy, 0..E17_SMOKE_CASES).expect("buggy range runs");
    let repro = buggy_report
        .repro
        .as_ref()
        .expect("the non-hysteretic controller must violate within the range");
    println!(
        "\nplanted bug {} caught: {} violating case(s) in the range",
        buggy.discipline,
        buggy_report
            .cases
            .iter()
            .filter(|case| !case.violations.is_empty())
            .count()
    );
    print!("{}", repro.render());
    assert!(
        repro.shrunk.events.len() <= 3,
        "the shrunk repro must be minimal"
    );
    assert!(repro
        .shrunk
        .events
        .iter()
        .any(|event| matches!(event, SimEvent::Traffic { .. })));
    assert!(repro
        .shrunk
        .violations
        .iter()
        .any(|violation| matches!(violation, Violation::AdmissionFlap { .. })));

    println!(
        "\nExpected shape: the faithful controller sheds explicitly and honestly under\n\
         hot-shard, query-of-death, and surge scenarios while availability stays above\n\
         each scenario's target, and the planted no-hysteresis controller flaps state\n\
         within its dwell window and shrinks to a bare traffic-event repro.\n\n\
         All E17 acceptance assertions passed."
    );
}
