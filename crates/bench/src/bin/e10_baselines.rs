//! E10 — Section 1.2 baselines: exact solvers agree; greedy is a
//! 1/2-approximation; FPTAS achieves 1 − ε; an LCA query costs far less
//! than a full solve at scale.

use lcakp_bench::{banner, experiment_root, Table};
use lcakp_core::{KnapsackLca, LcaKp};
use lcakp_knapsack::iky::Epsilon;
use lcakp_knapsack::{solvers, ItemId};
use lcakp_oracle::InstanceOracle;
use lcakp_workloads::{standard_suite, Family, WorkloadSpec};
use std::time::Instant;

fn main() {
    banner(
        "E10",
        "classical-algorithm cross-check and cost comparison",
        "Section 1.2 ([WS11] greedy/FPTAS), Definition 2.1",
    );

    println!("Solver agreement and approximation quality (n = 22, all families):");
    let mut table = Table::new([
        "workload",
        "OPT (dp=bb=mitm=brute)",
        "greedy/OPT",
        "modified-greedy/OPT",
        "fptas(1/8)/OPT",
        "fractional UB >= OPT",
    ]);
    for spec in standard_suite(22, 0x10) {
        let instance = match spec.generate() {
            Ok(instance) => instance,
            Err(_) => continue,
        };
        let dp = solvers::dp_by_weight(&instance).expect("dp runs").value;
        let bb = solvers::branch_and_bound(&instance).expect("bb runs").value;
        let mitm = solvers::meet_in_the_middle(&instance)
            .expect("mitm runs")
            .value;
        let brute = solvers::brute_force(&instance).expect("brute runs").value;
        assert_eq!(dp, bb);
        assert_eq!(dp, mitm);
        assert_eq!(dp, brute);
        let greedy = solvers::greedy_prefix(&instance).outcome.value;
        let modified = solvers::modified_greedy(&instance).value;
        let eps = Epsilon::new(1, 8).expect("valid eps");
        let fptas = solvers::fptas(&instance, eps).expect("fptas runs").value;
        let fractional = solvers::fractional::fractional_upper_bound(&instance);
        let ratio = |v: u64| {
            if dp == 0 {
                1.0
            } else {
                v as f64 / dp as f64
            }
        };
        table.row([
            spec.family.to_string(),
            dp.to_string(),
            format!("{:.3}", ratio(greedy)),
            format!("{:.3}", ratio(modified)),
            format!("{:.3}", ratio(fptas)),
            (fractional >= dp).to_string(),
        ]);
    }
    table.print();

    println!("\nWall-clock cost: full exact solve vs one LCA query (small-dominated):");
    let mut table = Table::new(["n", "dp_by_weight", "modified greedy", "one LCA-KP query"]);
    for &n in &[2_000usize, 20_000, 200_000] {
        let spec = WorkloadSpec::new(Family::SmallDominated, n, 0x100);
        let norm = spec.generate_normalized().expect("workload generates");
        let dp_cell = {
            let start = Instant::now();
            match solvers::dp_by_weight(norm.as_instance()) {
                Ok(_) => format!("{:.2?}", start.elapsed()),
                Err(_) => "refused (cell budget)".to_owned(),
            }
        };
        let greedy_time = {
            let start = Instant::now();
            let _ = solvers::modified_greedy(norm.as_instance());
            start.elapsed()
        };
        let lca_time = {
            let eps = Epsilon::new(1, 4).expect("valid eps");
            let lca = LcaKp::new(eps).expect("lca builds");
            let oracle = InstanceOracle::new(&norm);
            let root = experiment_root("e10");
            let mut rng = root.derive("e10/sampling", n as u64).rng();
            let start = Instant::now();
            let _ = lca.query(
                &oracle,
                &mut rng,
                ItemId(n / 2),
                &root.derive("e10/shared-seed", 0),
            );
            start.elapsed()
        };
        table.row([
            n.to_string(),
            dp_cell,
            format!("{greedy_time:.2?}"),
            format!("{lca_time:.2?}"),
        ]);
    }
    table.print();
    println!(
        "\nExpected shape: all exact solvers agree bit-for-bit; modified greedy is ≥ 1/2\n\
         (usually much better); FPTAS is ≥ 1 − ε. The per-query LCA cost is flat in n\n\
         while full solves grow with the instance."
    );
}
