//! E2 — Theorem 3.3: the Ω(n) wall survives every approximation ratio
//! α ∈ (0, 1].

use lcakp_bench::{banner, Table};
use lcakp_lowerbounds::approx_reduction::{run_approx_experiment, RatioPair};

fn main() {
    banner(
        "E2",
        "α-approximate Knapsack LCA needs Ω(n) queries for every fixed α",
        "Theorem 3.3",
    );

    let n = 1024;
    let trials = 4_000;
    let mut table = Table::new(["alpha", "beta", "budget/n", "success", "clears 2/3"]);
    for &(alpha_num, beta_num) in &[(99u64, 98u64), (50, 25), (10, 5), (2, 1)] {
        let ratios = RatioPair::new(alpha_num, beta_num, 100);
        for frac_percent in [0u64, 10, 33, 50, 100] {
            let budget = (n as u64 * frac_percent) / 100;
            let rate = run_approx_experiment(n, ratios, budget, trials, 0xE2);
            table.row([
                format!("{:.2}", ratios.alpha()),
                format!("{:.2}", ratios.beta()),
                format!("{:.2}", frac_percent as f64 / 100.0),
                format!("{:.3}", rate.rate()),
                if rate.clears(2.0 / 3.0) { "yes" } else { "no" }.to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "\nExpected shape: the success curve is the same for every α — shrinking the\n\
         required ratio does not buy back a single query."
    );
}
