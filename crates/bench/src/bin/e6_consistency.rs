//! E6 — Lemma 4.9: independent runs of `LCA-KP` (fresh sampling, shared
//! seed) answer consistently with probability ≥ 1 − ε.

use lcakp_bench::{banner, experiment_root, Table};
use lcakp_core::consistency::{audit_consistency, audit_consistency_parallel};
use lcakp_core::LcaKp;
use lcakp_knapsack::iky::Epsilon;
use lcakp_knapsack::ItemId;
use lcakp_oracle::InstanceOracle;
use lcakp_reproducible::SampleBudget;
use lcakp_workloads::{Family, WorkloadSpec};

fn main() {
    banner(
        "E6",
        "independent LCA-KP runs answer according to one common solution w.p. ≥ 1 − ε",
        "Lemma 4.9 (consistency), Definitions 2.3–2.4",
    );

    let n = 200;
    let runs = 10;
    // ε = 1/6 keeps the small-item cut-off active (see e5) so that
    // consistency is tested on non-trivial rules.
    let eps = Epsilon::new(1, 6).expect("valid eps");
    let mut table = Table::new([
        "workload",
        "budget factor",
        "runs",
        "mode agreement",
        "pairwise",
        "item agreement",
        "distinct solutions",
    ]);
    for spec in [
        WorkloadSpec::new(Family::SmallDominated, n, 0xE6),
        WorkloadSpec::new(
            Family::LargeDominated {
                heavy: 4,
                heavy_profit: 8_000,
            },
            n,
            0xE6,
        ),
        WorkloadSpec::new(
            Family::GarbageMix {
                garbage_percent: 25,
            },
            n,
            0xE6,
        ),
        WorkloadSpec::new(Family::StronglyCorrelated { range: 1000 }, n, 0xE6),
    ] {
        let norm = spec.generate_normalized().expect("workload generates");
        let oracle = InstanceOracle::new(&norm);
        let items: Vec<ItemId> = (0..n).step_by(20).map(ItemId).collect();
        for &factor in &[0.002f64, 0.01, 0.04] {
            let lca = LcaKp::new(eps)
                .expect("lca builds")
                .with_budget(SampleBudget::Calibrated { factor });
            let report = audit_consistency(
                &lca,
                &oracle,
                &items,
                &experiment_root("e6").derive("e6/shared-seed", 0),
                runs,
                0xABCD,
            )
            .expect("audit runs");
            table.row([
                spec.family.to_string(),
                format!("{factor}"),
                runs.to_string(),
                format!("{:.3}", report.mode_agreement),
                format!("{:.3}", report.pairwise_agreement),
                format!("{:.4}", report.mean_item_agreement),
                report.distinct_solutions.to_string(),
            ]);
        }
    }
    table.print();

    // Parallel deployment check (Definition 2.3): many threads, one
    // oracle, one seed.
    let spec = WorkloadSpec::new(Family::SmallDominated, n, 0x6E62);
    let norm = spec.generate_normalized().expect("workload generates");
    let oracle = InstanceOracle::new(&norm);
    let items: Vec<ItemId> = (0..n).step_by(25).map(ItemId).collect();
    let lca = LcaKp::new(eps)
        .expect("lca builds")
        .with_budget(SampleBudget::Calibrated { factor: 0.01 });
    let report = audit_consistency_parallel(
        &lca,
        &oracle,
        &items,
        &experiment_root("e6").derive("e6/shared-seed-parallel", 0),
        8,
        0xBEEF,
    )
    .expect("parallel audit runs");
    println!("\nParallel (8 threads, shared oracle + seed): {report}");
    println!(
        "\nExpected shape: mode agreement rises with the sample-budget factor toward the\n\
         1 − ε target ({:.2}); the distinct-solution count falls toward 1.",
        1.0 - eps.as_f64()
    );
}
