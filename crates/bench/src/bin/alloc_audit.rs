//! Allocation audit for the serving hot path (ROADMAP: zero-alloc
//! serving). A counting `#[global_allocator]` wraps the system
//! allocator and reports, as canonical JSON:
//!
//!   1. the E14 smoke serving path (`run_smoke`): total allocations,
//!      total/peak bytes, and per-query averages across the batch;
//!   2. a steady-state loop of `query_with_audit_in` with one reused
//!      [`QueryScratch`] — the number this PR drives down: after the
//!      warm-up query has sized the scratch buffers, per-query
//!      allocations come only from the explicitly allowed sites
//!      (rMedian working sets, the returned rule's item set).
//!
//! `--check` exits nonzero if the steady-state per-query allocation
//! count exceeds `STEADY_ALLOC_BUDGET` — the CI smoke that keeps
//! allocation regressions out of the serving loop.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use lcakp_bench::experiment_root;
use lcakp_core::{LcaKp, QueryScratch};
use lcakp_knapsack::iky::Epsilon;
use lcakp_knapsack::ItemId;
use lcakp_oracle::InstanceOracle;
use lcakp_reproducible::SampleBudget;
use lcakp_service::run_smoke;
use lcakp_workloads::{Family, WorkloadSpec};

/// Steady-state per-query allocation budget, enforced by `--check`.
/// Measured 122 allocations/query on the reference configuration
/// (rMedian batch working sets plus the returned rule's item set —
/// the sites `docs/lints.md` lists as allowed under D011); the budget
/// leaves ~3x headroom so only a structural regression — a hoisted
/// buffer moving back into the query path — trips it.
const STEADY_ALLOC_BUDGET: u64 = 384;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

fn on_alloc(size: u64) {
    ALLOCS.fetch_add(1, Relaxed);
    BYTES.fetch_add(size, Relaxed);
    let live = LIVE.fetch_add(size, Relaxed) + size;
    PEAK.fetch_max(live, Relaxed);
}

/// Counts every allocation event and tracks live/peak bytes. `realloc`
/// counts as one event for its full new size: growing a `Vec` without
/// reserved capacity is exactly the regression this audit watches for.
struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = System.alloc(layout);
        if !ptr.is_null() {
            on_alloc(layout.size() as u64);
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        LIVE.fetch_sub(layout.size() as u64, Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = System.realloc(ptr, layout, new_size);
        if !new_ptr.is_null() {
            LIVE.fetch_sub(layout.size() as u64, Relaxed);
            on_alloc(new_size as u64);
        }
        new_ptr
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

#[derive(Clone, Copy)]
struct Snapshot {
    allocs: u64,
    bytes: u64,
    peak: u64,
}

fn snapshot() -> Snapshot {
    Snapshot {
        allocs: ALLOCS.load(Relaxed),
        bytes: BYTES.load(Relaxed),
        peak: PEAK.load(Relaxed),
    }
}

/// Counter deltas across a measured section. Peak is reset at section
/// entry so it reports the section's own high-water mark over the
/// section's entry live bytes.
fn begin_section() -> Snapshot {
    PEAK.store(LIVE.load(Relaxed), Relaxed);
    snapshot()
}

struct Section {
    allocs: u64,
    bytes: u64,
    peak: u64,
}

fn end_section(start: Snapshot) -> Section {
    let now = snapshot();
    Section {
        allocs: now.allocs - start.allocs,
        bytes: now.bytes - start.bytes,
        peak: now.peak,
    }
}

/// Integer per-query average in thousandths, keeping the JSON free of
/// platform-dependent float formatting.
fn per_query_milli(total: u64, queries: u64) -> u64 {
    if queries == 0 {
        return 0;
    }
    total.saturating_mul(1000) / queries
}

fn main() {
    // lcakp-lint: allow(D002) reason="--check flag selects CI gating, no entropy involved"
    let check = std::env::args().any(|a| a == "--check");

    // Section 1: the E14 smoke serving path, end to end (workload
    // generation, journal, breaker, the works).
    let smoke_start = begin_section();
    let run = run_smoke(&experiment_root("e14")).expect("e14 smoke runs");
    let smoke = end_section(smoke_start);
    let smoke_queries = run.report.outcomes.len() as u64;

    // Section 2: steady-state queries with a reused scratch. Setup and
    // warm-up are outside the measured window: the warm-up query sizes
    // the scratch buffers, so the measured loop sees only the
    // allocations the scratch hoisting could not remove.
    let root = experiment_root("alloc-audit");
    let spec = WorkloadSpec::new(Family::SmallDominated, 400, 0xA110C);
    let norm = spec.generate_normalized().expect("workload generates");
    let oracle = InstanceOracle::new(&norm);
    let eps = Epsilon::new(1, 4).expect("valid eps");
    let lca = LcaKp::new(eps)
        .expect("lca builds")
        .with_budget(SampleBudget::Calibrated { factor: 0.01 });
    let shared_seed = root.derive("alloc-audit/shared-seed", 0);
    let mut rng = root.derive("alloc-audit/sampling", 0).rng();
    let mut scratch = QueryScratch::default();

    lca.query_with_audit_in(&oracle, &mut rng, ItemId(0), &shared_seed, &mut scratch)
        .expect("warm-up query");

    let steady_queries = 64u64;
    let steady_start = begin_section();
    for i in 0..steady_queries {
        let item = ItemId((i as usize * 7) % norm.len());
        lca.query_with_audit_in(&oracle, &mut rng, item, &shared_seed, &mut scratch)
            .expect("steady-state query");
    }
    let steady = end_section(steady_start);
    let steady_per_query = steady.allocs.div_ceil(steady_queries);

    println!("{{");
    println!("  \"smoke\": {{");
    println!("    \"queries\": {smoke_queries},");
    println!("    \"allocations\": {},", smoke.allocs);
    println!("    \"bytes\": {},", smoke.bytes);
    println!("    \"peak_bytes\": {},", smoke.peak);
    println!(
        "    \"allocations_per_query_milli\": {},",
        per_query_milli(smoke.allocs, smoke_queries)
    );
    println!(
        "    \"bytes_per_query_milli\": {}",
        per_query_milli(smoke.bytes, smoke_queries)
    );
    println!("  }},");
    println!("  \"steady_state\": {{");
    println!("    \"queries\": {steady_queries},");
    println!("    \"allocations\": {},", steady.allocs);
    println!("    \"bytes\": {},", steady.bytes);
    println!("    \"peak_bytes\": {},", steady.peak);
    println!("    \"allocations_per_query\": {steady_per_query},");
    println!("    \"budget_per_query\": {STEADY_ALLOC_BUDGET}");
    println!("  }}");
    println!("}}");

    if check && steady_per_query > STEADY_ALLOC_BUDGET {
        eprintln!(
            "alloc_audit: steady-state allocations per query {steady_per_query} exceeds \
             budget {STEADY_ALLOC_BUDGET}"
        );
        std::process::exit(1);
    }
}
