//! Integration tests: the measured success curves against the exact
//! ceilings the proofs imply.

use lcakp_lowerbounds::candidates::{
    evaluate, OrStrategy, PrefixScanner, RandomProber, WeightedSamplerStrategy,
};
use lcakp_lowerbounds::maximal_feasible::{run_maximal_experiment, MaximalInstance};
use lcakp_lowerbounds::or_reduction::{run_point_query_experiment, OrReduction};
use rand::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// The exact ceiling for point-query strategies on the hard OR
/// distribution: `1/2 + q/(2(n−1))`.
fn ceiling(n: usize, budget: u64) -> f64 {
    0.5 + budget as f64 / (2.0 * (n as f64 - 1.0))
}

#[test]
fn success_curve_matches_the_ceiling_closely() {
    let n = 600;
    let trials = 5_000;
    for budget in [30u64, 120, 300, 480] {
        let measured = run_point_query_experiment(n, budget, trials, 71).rate();
        let predicted = ceiling(n, budget).min(1.0);
        assert!(
            (measured - predicted).abs() < 0.03,
            "budget {budget}: measured {measured:.3} vs ceiling {predicted:.3}"
        );
    }
}

#[test]
fn no_candidate_strategy_beats_the_ceiling() {
    let n = 500;
    let trials = 4_000;
    for budget in [25u64, 100] {
        let bound = ceiling(n, budget) + 0.03;
        let strategies: Vec<(&str, f64)> = vec![
            (
                "random",
                evaluate(&RandomProber { budget }, n, trials, 72).rate(),
            ),
            (
                "prefix",
                evaluate(&PrefixScanner { budget }, n, trials, 72).rate(),
            ),
        ];
        for (name, rate) in strategies {
            assert!(rate <= bound, "{name}@{budget}: {rate} > {bound}");
        }
    }
}

#[test]
fn weighted_sampling_failure_decays_geometrically() {
    // On OR = 1 inputs the special-item mass is 1/3; k samples miss all
    // ones with probability (1/3)^k, so overall failure ≈ (1/3)^k / 2.
    let n = 2_000;
    let trials = 6_000;
    let mut previous_failure = 1.0;
    for k in [1u64, 2, 3, 4] {
        let rate = evaluate(&WeightedSamplerStrategy { budget: k }, n, trials, 73).rate();
        let failure = 1.0 - rate;
        let predicted = (1.0f64 / 3.0).powi(k as i32) / 2.0;
        assert!(
            (failure - predicted).abs() < 0.03,
            "k={k}: failure {failure:.3} vs predicted {predicted:.3}"
        );
        assert!(failure <= previous_failure + 0.02);
        previous_failure = failure;
    }
}

#[test]
fn or_reduction_queries_cost_exactly_one_bit_access() {
    // The reduction's bookkeeping: answering any single LCA query with a
    // budget-q strategy charges at most q accesses to x — the inequality
    // chain at the end of the Theorem 3.2 proof.
    let instance = OrReduction::single_one(100, 50);
    let mut rng = ChaCha12Rng::seed_from_u64(9);
    let strategy = RandomProber { budget: 30 };
    let _ = strategy.answer(&instance, &mut rng);
    assert!(instance.accesses() <= 30);
}

#[test]
fn maximal_wall_scales_with_n() {
    // The 4/5 wall holds at q = n/11 for increasing n; measured success
    // should be roughly n-independent at fixed q/n.
    let trials = 4_000;
    let mut rates = Vec::new();
    for &n in &[220usize, 440, 880] {
        let rate = run_maximal_experiment(n, (n / 11) as u64, trials, 74).rate();
        assert!(rate < 0.8, "n={n}: {rate}");
        rates.push(rate);
    }
    let spread = rates.iter().fold(0.0f64, |acc, &r| acc.max(r))
        - rates.iter().fold(1.0f64, |acc, &r| acc.min(r));
    assert!(
        spread < 0.06,
        "success at fixed q/n should be n-independent: {rates:?}"
    );
}

#[test]
fn maximal_instance_weights_sum_consistently() {
    let mut rng = ChaCha12Rng::seed_from_u64(5);
    for _ in 0..100 {
        let instance = MaximalInstance::sample(&mut rng, 50);
        let total: u64 = (0..50).map(|k| instance.weight(k)).sum();
        // 3 + {1 or 3} in quarter units.
        assert!(total == 4 || total == 6);
    }
}
