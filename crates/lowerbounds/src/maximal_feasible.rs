//! The hard distribution of Theorem 3.4: maximal-feasible Knapsack.
//!
//! Weight limit `K = 1` (integer units: `K = 4`). A uniformly random pair
//! `(i, j)` of items carries the only non-zero weights: `w_i = 3/4`
//! (units: 3) always, and `w_j` is `1/4` (units: 1) or `3/4` (units: 3)
//! with probability 1/2 each; all other items weigh 0 and all profits are
//! irrelevant.
//!
//! * If `w_j = 1/4`: the unique maximal solution is *all* items (3 + 1 =
//!   4 ≤ K) — both hidden items must be answered **yes**.
//! * If `w_j = 3/4`: the two maximal solutions each drop exactly one of
//!   `i, j` — the answers on `i` and `j` must differ.
//!
//! Lemma 3.5 shows any deterministic strategy with budget `q < n/11`
//! must answer **yes** on a heavy query it cannot disambiguate; on the
//! two-query sequence `(s_i, s_j)` that forces an inconsistency with
//! probability ≥ 1/5. The [`run_maximal_experiment`] harness measures the
//! success of the best-effort strategy (probe a deterministic seeded set,
//! fall back to **yes**) across budgets.

use crate::SuccessRate;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Weight units: the capacity (the proof's `K = 1`).
pub const CAPACITY_UNITS: u64 = 4;
/// Weight units of a heavy item (the proof's `3/4`).
pub const HEAVY_UNITS: u64 = 3;
/// Weight units of a light item (the proof's `1/4`).
pub const LIGHT_UNITS: u64 = 1;

/// One draw from the hard distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MaximalInstance {
    /// Position of the always-heavy item `i`.
    pub i: usize,
    /// Position of the second special item `j`.
    pub j: usize,
    /// Whether `w_j = 3/4` (else `1/4`).
    pub j_heavy: bool,
    /// Number of items.
    pub n: usize,
}

impl MaximalInstance {
    /// Draws `(i, j)` uniformly (distinct) and the weight coin.
    pub fn sample<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Self {
        assert!(n >= 2);
        let i = rng.gen_range(0..n);
        let mut j = rng.gen_range(0..n - 1);
        if j >= i {
            j += 1;
        }
        MaximalInstance {
            i,
            j,
            j_heavy: rng.gen_bool(0.5),
            n,
        }
    }

    /// The weight (in units) of item `k`.
    pub fn weight(&self, k: usize) -> u64 {
        if k == self.i {
            HEAVY_UNITS
        } else if k == self.j {
            if self.j_heavy {
                HEAVY_UNITS
            } else {
                LIGHT_UNITS
            }
        } else {
            0
        }
    }

    /// Whether the answer pair `(answer_i, answer_j)` for queries on
    /// items `i` and `j` is consistent with *some* maximal feasible
    /// solution (all other items are weight 0, hence always included).
    pub fn pair_is_consistent(&self, answer_i: bool, answer_j: bool) -> bool {
        if self.j_heavy {
            // Two heavy items: exactly one can and must be included.
            answer_i != answer_j
        } else {
            // 3/4 + 1/4 fits: the unique maximal solution has both.
            answer_i && answer_j
        }
    }
}

/// The proof's best-effort deterministic strategy for a single query on a
/// *heavy* item `k`: probe a fixed (seed-derived) set of `budget` other
/// positions; if the other non-zero item is found, disambiguate
/// (include only the smaller index when both are heavy; include
/// everything when the other is light); otherwise answer **yes**, as
/// Lemma 3.5 shows it must.
pub fn heavy_query_answer(
    instance: &MaximalInstance,
    k: usize,
    budget: u64,
    probe_seed: u64,
) -> bool {
    debug_assert_eq!(instance.weight(k), HEAVY_UNITS);
    // Deterministic probe set shared by all queries of this algorithm
    // (the algorithm is deterministic given its seed; Yao's principle
    // averages over the seed).
    let mut order: Vec<usize> = (0..instance.n).collect();
    let mut rng = ChaCha12Rng::seed_from_u64(probe_seed);
    order.shuffle(&mut rng);
    for &probe in order
        .iter()
        .filter(|&&probe| probe != k)
        .take(budget.min(instance.n as u64) as usize)
    {
        match instance.weight(probe) {
            0 => continue,
            LIGHT_UNITS => return true, // other is light: everything fits.
            _ => {
                // Both heavy: canonical tie-break — keep the smaller id.
                return k < probe;
            }
        }
    }
    true // forced yes (Lemma 3.5).
}

/// Answers a query on any item: weight-0 and light items are always in
/// every maximal solution; heavy items go through
/// [`heavy_query_answer`].
pub fn query_answer(instance: &MaximalInstance, k: usize, budget: u64, probe_seed: u64) -> bool {
    match instance.weight(k) {
        w if w < HEAVY_UNITS => true,
        _ => heavy_query_answer(instance, k, budget, probe_seed),
    }
}

/// The success cap the proof of Theorem 3.4 implies for any
/// deterministic strategy with budget `q`: correctness is at most
/// `P[miss coin] + 2·P[probe finds the partner]` — i.e.
/// `1/2 + 2·q·n/((n−1)·n)`, capped at 1. At `q = n/11` this is
/// `1/2 + 2/11·n/(n−1) < 4/5`, the theorem's wall.
pub fn success_cap(n: usize, budget: u64) -> f64 {
    let n = n as f64;
    (0.5 + 2.0 * (n / (n - 1.0)) * budget as f64 / n).min(1.0)
}

/// Runs the two-query sequence `(s_i, s_j)` of the proof over fresh draws
/// from the hard distribution and reports how often the answers are
/// consistent with a maximal solution. Theorem 3.4: no strategy exceeds
/// 4/5 while `budget < n/11`.
pub fn run_maximal_experiment(n: usize, budget: u64, trials: u64, seed: u64) -> SuccessRate {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut successes = 0;
    for trial in 0..trials {
        let instance = MaximalInstance::sample(&mut rng, n);
        // Fresh algorithm randomness per trial (Yao average), but shared
        // between the two queries of the sequence (the LCA's read-only
        // seed).
        let probe_seed = seed ^ trial.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let answer_i = query_answer(&instance, instance.i, budget, probe_seed);
        let answer_j = query_answer(&instance, instance.j, budget, probe_seed);
        if instance.pair_is_consistent(answer_i, answer_j) {
            successes += 1;
        }
    }
    SuccessRate {
        successes,
        trials,
        budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_place_the_hidden_pair() {
        let instance = MaximalInstance {
            i: 2,
            j: 5,
            j_heavy: false,
            n: 8,
        };
        assert_eq!(instance.weight(2), HEAVY_UNITS);
        assert_eq!(instance.weight(5), LIGHT_UNITS);
        assert_eq!(instance.weight(0), 0);
    }

    #[test]
    fn consistency_semantics() {
        let light = MaximalInstance {
            i: 0,
            j: 1,
            j_heavy: false,
            n: 4,
        };
        assert!(light.pair_is_consistent(true, true));
        assert!(!light.pair_is_consistent(true, false));
        let heavy = MaximalInstance {
            i: 0,
            j: 1,
            j_heavy: true,
            n: 4,
        };
        assert!(heavy.pair_is_consistent(true, false));
        assert!(heavy.pair_is_consistent(false, true));
        assert!(!heavy.pair_is_consistent(true, true));
        assert!(!heavy.pair_is_consistent(false, false));
    }

    #[test]
    fn sample_produces_distinct_positions() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        for _ in 0..200 {
            let instance = MaximalInstance::sample(&mut rng, 10);
            assert_ne!(instance.i, instance.j);
            assert!(instance.i < 10 && instance.j < 10);
        }
    }

    #[test]
    fn zero_budget_success_is_about_one_half() {
        // With no probes both heavy queries answer yes: success only in
        // the light case (probability 1/2).
        let rate = run_maximal_experiment(200, 0, 4000, 2);
        assert!((rate.rate() - 0.5).abs() < 0.05, "{rate}");
    }

    #[test]
    fn sublinear_budget_stays_below_four_fifths() {
        let n = 550;
        let budget = (n / 11) as u64;
        let rate = run_maximal_experiment(n, budget, 4000, 3);
        assert!(rate.rate() < 0.8, "{rate}");
    }

    #[test]
    fn full_probing_succeeds() {
        let rate = run_maximal_experiment(64, 64, 2000, 4);
        assert!(rate.rate() > 0.98, "{rate}");
    }

    #[test]
    fn measured_success_respects_the_theoretical_cap() {
        for &(n, budget) in &[(220usize, 20u64), (550, 50), (550, 137)] {
            let rate = run_maximal_experiment(n, budget, 4000, 6);
            let cap = success_cap(n, budget);
            assert!(
                rate.rate() <= cap + 0.03,
                "n={n} q={budget}: measured {} above cap {cap}",
                rate.rate()
            );
        }
    }

    #[test]
    fn cap_at_the_theorem_budget_is_below_four_fifths() {
        for &n in &[110usize, 1100, 11_000] {
            assert!(success_cap(n, (n / 11) as u64) < 0.8);
        }
    }

    #[test]
    fn success_increases_with_budget() {
        let low = run_maximal_experiment(300, 10, 3000, 5);
        let high = run_maximal_experiment(300, 200, 3000, 5);
        assert!(high.rate() > low.rate(), "low {low}, high {high}");
    }
}
