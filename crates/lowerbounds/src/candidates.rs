//! Candidate strategies for the OR task, behind one trait — so that the
//! experiments can pit *any* budgeted algorithm against the hard
//! distribution and observe that none beats the `1/2 + q/(2(n−1))`
//! ceiling the Theorem 3.2 proof implies.

use crate::or_reduction::{OrReduction, ONE_PROFIT};
use crate::SuccessRate;
use lcakp_knapsack::ItemId;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// A (possibly randomized) strategy answering the single LCA query of
/// the reduction: "is the special item in the solution?" — equivalently,
/// "is `OR(x) = 0`?".
pub trait OrStrategy {
    /// A short display name for tables.
    fn name(&self) -> &'static str;

    /// The instance-access budget the strategy is allowed.
    fn budget(&self) -> u64;

    /// Answers "special item is in the solution" for one instance.
    fn answer<R: Rng + ?Sized>(&self, instance: &OrReduction, rng: &mut R) -> bool;
}

/// Probes uniformly random distinct bit positions.
#[derive(Debug, Clone, Copy)]
pub struct RandomProber {
    /// Point-query budget.
    pub budget: u64,
}

impl OrStrategy for RandomProber {
    fn name(&self) -> &'static str {
        "random-prober"
    }

    fn budget(&self) -> u64 {
        self.budget
    }

    fn answer<R: Rng + ?Sized>(&self, instance: &OrReduction, rng: &mut R) -> bool {
        let n_bits = instance.len() - 1;
        let mut order: Vec<usize> = (0..n_bits).collect();
        order.shuffle(rng);
        for &position in order.iter().take(self.budget.min(n_bits as u64) as usize) {
            if instance.query(ItemId(position)).profit > 0 {
                return false;
            }
        }
        true
    }
}

/// Scans a fixed prefix of positions — the natural *deterministic*
/// strategy; on the uniform needle distribution it does exactly as well
/// as random probing, which is the Yao-principle point.
#[derive(Debug, Clone, Copy)]
pub struct PrefixScanner {
    /// Point-query budget.
    pub budget: u64,
}

impl OrStrategy for PrefixScanner {
    fn name(&self) -> &'static str {
        "prefix-scanner"
    }

    fn budget(&self) -> u64 {
        self.budget
    }

    fn answer<R: Rng + ?Sized>(&self, instance: &OrReduction, _rng: &mut R) -> bool {
        let n_bits = instance.len() - 1;
        for position in 0..self.budget.min(n_bits as u64) as usize {
            if instance.query(ItemId(position)).profit > 0 {
                return false;
            }
        }
        true
    }
}

/// Uses the Section 4 access mode: weighted samples instead of point
/// queries.
#[derive(Debug, Clone, Copy)]
pub struct WeightedSamplerStrategy {
    /// Weighted-sample budget.
    pub budget: u64,
}

impl OrStrategy for WeightedSamplerStrategy {
    fn name(&self) -> &'static str {
        "weighted-sampler"
    }

    fn budget(&self) -> u64 {
        self.budget
    }

    fn answer<R: Rng + ?Sized>(&self, instance: &OrReduction, rng: &mut R) -> bool {
        for _ in 0..self.budget {
            let (_, item) = instance.sample_weighted(rng);
            if item.profit == ONE_PROFIT {
                return false;
            }
        }
        true
    }
}

/// Evaluates a strategy over the hard distribution.
pub fn evaluate<S: OrStrategy>(strategy: &S, n: usize, trials: u64, seed: u64) -> SuccessRate {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut successes = 0;
    for _ in 0..trials {
        let instance = OrReduction::hard_input(&mut rng, n);
        if strategy.answer(&instance, &mut rng) == instance.special_in_optimum() {
            successes += 1;
        }
    }
    SuccessRate {
        successes,
        trials,
        budget: strategy.budget(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_random_probing_match_on_the_hard_distribution() {
        let n = 400;
        let trials = 3_000;
        let random = evaluate(&RandomProber { budget: 40 }, n, trials, 1);
        let prefix = evaluate(&PrefixScanner { budget: 40 }, n, trials, 1);
        assert!(
            (random.rate() - prefix.rate()).abs() < 0.05,
            "Yao symmetry broken: {random} vs {prefix}"
        );
    }

    #[test]
    fn no_point_query_strategy_beats_the_ceiling() {
        let n = 400;
        let budget = 40u64;
        let ceiling = 0.5 + budget as f64 / (2.0 * (n as f64 - 1.0)) + 0.04;
        for rate in [
            evaluate(&RandomProber { budget }, n, 3_000, 2),
            evaluate(&PrefixScanner { budget }, n, 3_000, 2),
        ] {
            assert!(rate.rate() <= ceiling, "{rate} above ceiling {ceiling}");
        }
    }

    #[test]
    fn weighted_strategy_breaks_the_ceiling_at_constant_budget() {
        let n = 4_096;
        let weighted = evaluate(&WeightedSamplerStrategy { budget: 8 }, n, 2_000, 3);
        assert!(weighted.rate() > 0.9, "{weighted}");
    }

    #[test]
    fn strategy_names_are_stable() {
        assert_eq!(RandomProber { budget: 1 }.name(), "random-prober");
        assert_eq!(PrefixScanner { budget: 1 }.name(), "prefix-scanner");
        assert_eq!(
            WeightedSamplerStrategy { budget: 1 }.name(),
            "weighted-sampler"
        );
    }
}
