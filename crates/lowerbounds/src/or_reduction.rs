//! The OR-reduction instance family of Theorem 3.2 (Figure 1).
//!
//! Given a hidden bit-string `x ∈ {0,1}^{n−1}`, the Knapsack instance
//! `I(x)` has weight limit `K = 1` and items
//!
//! * `s_i = (x_i, 1)` for `i < n − 1` — in integer units, profit
//!   `2·x_i`;
//! * `s_{n−1} = (1/2, 1)` — in integer units, profit `1`.
//!
//! Every feasible solution has at most one item, so the special item is
//! in the (unique) optimal solution iff `OR(x) = 0`. Answering *one* LCA
//! query about the special item therefore computes `OR(x)`, whose
//! randomized query complexity is `Ω(n)` (Lemma 3.1).

use crate::SuccessRate;
use lcakp_knapsack::{Item, ItemId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::sync::atomic::{AtomicU64, Ordering};

/// Integer profit of a `1`-bit item (the reduction's profit "1").
pub const ONE_PROFIT: u64 = 2;
/// Integer profit of the special item (the reduction's "1/2").
pub const SPECIAL_PROFIT: u64 = 1;

/// The simulated instance `I(x)`: query access costs one access to `x`
/// per non-special item, exactly as in the proof.
#[derive(Debug)]
pub struct OrReduction {
    bits: Vec<bool>,
    bit_queries: AtomicU64,
}

impl OrReduction {
    /// Builds `I(x)` from explicit bits (`n = bits.len() + 1` items).
    pub fn new(bits: Vec<bool>) -> Self {
        OrReduction {
            bits,
            bit_queries: AtomicU64::new(0),
        }
    }

    /// The all-zeros input (OR = 0): the special item is optimal.
    pub fn all_zero(n: usize) -> Self {
        OrReduction::new(vec![false; n.saturating_sub(1)])
    }

    /// A single 1 at `position` (OR = 1).
    ///
    /// # Panics
    ///
    /// Panics if `position ≥ n − 1`.
    pub fn single_one(n: usize, position: usize) -> Self {
        let mut bits = vec![false; n - 1];
        bits[position] = true;
        OrReduction::new(bits)
    }

    /// Draws from the hard input distribution: all-zeros with probability
    /// 1/2, otherwise a single 1 at a uniform position.
    pub fn hard_input<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Self {
        if rng.gen_bool(0.5) {
            OrReduction::all_zero(n)
        } else {
            OrReduction::single_one(n, rng.gen_range(0..n - 1))
        }
    }

    /// Number of items `n` of `I(x)`.
    pub fn len(&self) -> usize {
        self.bits.len() + 1
    }

    /// Returns `true` if the instance is the degenerate single-item one.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// `OR(x)`.
    pub fn or_value(&self) -> bool {
        self.bits.iter().any(|&bit| bit)
    }

    /// Ground truth for the single LCA query the reduction makes: the
    /// special item is in the optimal solution iff `OR(x) = 0`.
    pub fn special_in_optimum(&self) -> bool {
        !self.or_value()
    }

    /// The id of the special item.
    pub fn special_id(&self) -> ItemId {
        ItemId(self.bits.len())
    }

    /// Simulated point query: reveals item `id`, charging one `x`-access
    /// for non-special items (the special item is known for free, as in
    /// the proof).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn query(&self, id: ItemId) -> Item {
        if id == self.special_id() {
            return Item::new(SPECIAL_PROFIT, 1);
        }
        self.bit_queries.fetch_add(1, Ordering::Relaxed);
        let profit = if self.bits[id.index()] { ONE_PROFIT } else { 0 };
        Item::new(profit, 1)
    }

    /// Simulated weighted sample: an item with probability proportional
    /// to profit. **This is the access mode the lower bound does not
    /// survive** — one sample has constant advantage on `OR(x)`.
    pub fn sample_weighted<R: Rng + ?Sized>(&self, rng: &mut R) -> (ItemId, Item) {
        self.bit_queries.fetch_add(1, Ordering::Relaxed);
        let ones: Vec<usize> = self
            .bits
            .iter()
            .enumerate()
            .filter_map(|(index, &bit)| bit.then_some(index))
            .collect();
        let total = SPECIAL_PROFIT + ONE_PROFIT * ones.len() as u64;
        let roll = rng.gen_range(0..total);
        if roll < SPECIAL_PROFIT {
            (self.special_id(), Item::new(SPECIAL_PROFIT, 1))
        } else {
            let which = ((roll - SPECIAL_PROFIT) / ONE_PROFIT) as usize;
            (ItemId(ones[which]), Item::new(ONE_PROFIT, 1))
        }
    }

    /// Accesses charged so far.
    pub fn accesses(&self) -> u64 {
        self.bit_queries.load(Ordering::Relaxed)
    }

    /// Materializes `I(x)` as a concrete [`lcakp_knapsack::Instance`] —
    /// for cross-checking the reduction against the exact solvers (the
    /// LCA under test must of course *not* be given this).
    pub fn to_instance(&self) -> lcakp_knapsack::Instance {
        let mut items: Vec<Item> = self
            .bits
            .iter()
            .map(|&bit| Item::new(if bit { ONE_PROFIT } else { 0 }, 1))
            .collect();
        items.push(Item::new(SPECIAL_PROFIT, 1));
        lcakp_knapsack::Instance::new(items, 1).expect("reduction instance is valid")
    }
}

/// The natural budgeted point-query strategy: probe `budget` distinct
/// random positions of `x`; answer "special is optimal" iff no 1 was
/// found. No strategy does better on the hard distribution (the proof's
/// `Ω(n)` is exactly the statement that this success curve is the
/// ceiling).
pub fn random_probe_answer<R: Rng + ?Sized>(
    instance: &OrReduction,
    budget: u64,
    rng: &mut R,
) -> bool {
    let n_bits = instance.len() - 1;
    let mut order: Vec<usize> = (0..n_bits).collect();
    order.shuffle(rng);
    for &position in order.iter().take(budget.min(n_bits as u64) as usize) {
        let item = instance.query(ItemId(position));
        if item.profit > 0 {
            return false; // found a 1: OR = 1, special not optimal.
        }
    }
    true
}

/// Measures the success probability of the budgeted point-query strategy
/// over the hard distribution (experiment E1, point-query panel).
pub fn run_point_query_experiment(n: usize, budget: u64, trials: u64, seed: u64) -> SuccessRate {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut successes = 0;
    for _ in 0..trials {
        let instance = OrReduction::hard_input(&mut rng, n);
        let answer = random_probe_answer(&instance, budget, &mut rng);
        if answer == instance.special_in_optimum() {
            successes += 1;
        }
    }
    SuccessRate {
        successes,
        trials,
        budget,
    }
}

/// Measures the success probability of a strategy allowed `budget`
/// *weighted samples* instead: answer "special is optimal" iff every
/// sample returned the special item (experiment E1, weighted panel —
/// constant budget suffices, previewing Theorem 4.1's model).
pub fn run_weighted_sampling_experiment(
    n: usize,
    budget: u64,
    trials: u64,
    seed: u64,
) -> SuccessRate {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut successes = 0;
    for _ in 0..trials {
        let instance = OrReduction::hard_input(&mut rng, n);
        let mut saw_one = false;
        for _ in 0..budget {
            let (_, item) = instance.sample_weighted(&mut rng);
            if item.profit == ONE_PROFIT {
                saw_one = true;
                break;
            }
        }
        if saw_one != instance.special_in_optimum() {
            successes += 1;
        }
    }
    SuccessRate {
        successes,
        trials,
        budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimum_encodes_or() {
        assert!(OrReduction::all_zero(10).special_in_optimum());
        assert!(!OrReduction::single_one(10, 3).special_in_optimum());
    }

    #[test]
    fn queries_are_charged_only_for_bit_items() {
        let instance = OrReduction::single_one(5, 2);
        let _ = instance.query(instance.special_id());
        assert_eq!(instance.accesses(), 0);
        assert_eq!(instance.query(ItemId(2)), Item::new(ONE_PROFIT, 1));
        assert_eq!(instance.query(ItemId(0)), Item::new(0, 1));
        assert_eq!(instance.accesses(), 2);
    }

    #[test]
    fn full_budget_probing_always_succeeds() {
        let rate = run_point_query_experiment(64, 63, 200, 1);
        assert_eq!(rate.rate(), 1.0);
    }

    #[test]
    fn zero_budget_probing_is_a_coin_flip() {
        let rate = run_point_query_experiment(256, 0, 2000, 2);
        assert!(
            (rate.rate() - 0.5).abs() < 0.05,
            "expected ~1/2, got {rate}"
        );
    }

    #[test]
    fn sublinear_budget_stays_below_two_thirds() {
        // q = n/10 → predicted success 1/2 + q/(2(n−1)) ≈ 0.55 < 2/3.
        let n = 500;
        let rate = run_point_query_experiment(n, (n / 10) as u64, 2000, 3);
        assert!(rate.rate() < 2.0 / 3.0, "{rate}");
    }

    #[test]
    fn linear_budget_crosses_two_thirds() {
        let n = 300;
        let rate = run_point_query_experiment(n, n as u64 / 2, 2000, 4);
        assert!(rate.rate() >= 2.0 / 3.0, "{rate}");
    }

    #[test]
    fn weighted_sampling_needs_only_constant_budget() {
        // 6 samples: failure only when OR = 1 and every sample hit the
        // special item — probability (1/3)^6 ≈ 0.0014.
        let rate = run_weighted_sampling_experiment(10_000, 6, 2000, 5);
        assert!(rate.rate() >= 0.95, "{rate}");
    }

    #[test]
    fn reduction_agrees_with_exact_solvers() {
        // The semantic core of Figure 1, checked against ground truth:
        // the special item is in an optimal solution iff OR(x) = 0.
        for instance in [
            OrReduction::all_zero(12),
            OrReduction::single_one(12, 0),
            OrReduction::single_one(12, 10),
            OrReduction::new(vec![true, false, true, false]),
        ] {
            let concrete = instance.to_instance();
            let outcome = lcakp_knapsack::solvers::dp_by_weight(&concrete).unwrap();
            // OPT value encodes OR: 2 iff some bit is set, else 1.
            let expected = if instance.or_value() {
                ONE_PROFIT
            } else {
                SPECIAL_PROFIT
            };
            assert_eq!(outcome.value, expected);
            // And with OR = 0 the unique optimum is the special item.
            if !instance.or_value() {
                assert!(outcome.selection.contains(instance.special_id()));
            }
        }
    }

    #[test]
    fn weighted_sampling_distribution_is_profit_proportional() {
        let instance = OrReduction::single_one(100, 7);
        let mut rng = ChaCha12Rng::seed_from_u64(9);
        let mut special = 0u64;
        for _ in 0..3000 {
            if instance.sample_weighted(&mut rng).0 == instance.special_id() {
                special += 1;
            }
        }
        // Special mass = 1/3.
        assert!((special as f64 / 3000.0 - 1.0 / 3.0).abs() < 0.05);
    }
}
