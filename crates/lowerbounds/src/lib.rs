//! Hard instance families and adversary harnesses realizing the paper's
//! impossibility results (Section 3).
//!
//! Lower bounds cannot be "run" directly — they quantify over all
//! algorithms. What *can* be run, and what this crate provides, is the
//! constructions their proofs build and the sharp behavior they predict:
//!
//! * [`or_reduction`] — the instance family `I(x)` of Theorem 3.2
//!   (Figure 1): `n − 1` items carrying the bits of `x` plus a special
//!   item whose membership in the optimal solution encodes `OR(x)`.
//!   Any query strategy with budget `q` succeeds with probability at most
//!   `1/2 + q/(2(n−1))` on the hard input distribution — measured by
//!   [`or_reduction::run_point_query_experiment`] — while a *single*
//!   weighted sample pins `OR(x)` with constant advantage
//!   ([`or_reduction::run_weighted_sampling_experiment`]), previewing how
//!   Section 4 escapes the bound.
//! * [`approx_reduction`] — the Theorem 3.3 variant with the special
//!   item's profit set to `β < α`, killing every α-approximation.
//! * [`maximal_feasible`] — the Theorem 3.4 distribution (two hidden
//!   non-zero-weight items; `w_j ∈ {1/4, 3/4}`), together with the
//!   forced-yes probing strategy from the proof of Lemma 3.5 and the
//!   two-query success measurement that cannot exceed 4/5 at `q < n/11`.
//!
//! All experiments are deterministic functions of their parameters and a
//! seed, and count every access.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx_reduction;
pub mod candidates;
pub mod maximal_feasible;
pub mod or_reduction;

use std::fmt;

/// A measured success rate over repeated adversarial trials.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuccessRate {
    /// Trials that answered correctly / consistently.
    pub successes: u64,
    /// Total trials.
    pub trials: u64,
    /// Instance-access budget each trial was allowed.
    pub budget: u64,
}

impl SuccessRate {
    /// The empirical success probability.
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            return 1.0;
        }
        self.successes as f64 / self.trials as f64
    }

    /// Whether the measured rate clears the given threshold.
    pub fn clears(&self, threshold: f64) -> bool {
        self.rate() >= threshold
    }
}

impl fmt::Display for SuccessRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "budget={} success={}/{} ({:.3})",
            self.budget,
            self.successes,
            self.trials,
            self.rate()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn success_rate_arithmetic() {
        let rate = SuccessRate {
            successes: 3,
            trials: 4,
            budget: 10,
        };
        assert!((rate.rate() - 0.75).abs() < 1e-12);
        assert!(rate.clears(0.7));
        assert!(!rate.clears(0.8));
        assert!(rate.to_string().contains("3/4"));
    }

    #[test]
    fn empty_trials_rate_is_one() {
        let rate = SuccessRate {
            successes: 0,
            trials: 0,
            budget: 0,
        };
        assert_eq!(rate.rate(), 1.0);
    }
}
