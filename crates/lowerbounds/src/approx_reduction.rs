//! The α-approximation variant of the reduction (Theorem 3.3).
//!
//! Identical to the Theorem 3.2 construction, except the special item's
//! profit is `β` for an arbitrary `0 < β < α`: when `OR(x) = 0` the
//! singleton `{s_n}` is the *unique* α-approximate solution, and when
//! `OR(x) = 1` it is not α-approximate at all (`β < α·1`). The same
//! single LCA query therefore still computes `OR(x)` — the impossibility
//! survives *every* finite approximation ratio.

use crate::SuccessRate;
use lcakp_knapsack::{Item, ItemId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha12Rng;
use std::sync::atomic::{AtomicU64, Ordering};

/// The ratio pair (α, β) with `0 < β < α ≤ 1`, as exact rationals over a
/// common denominator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RatioPair {
    /// Numerator of α.
    pub alpha_num: u64,
    /// Numerator of β (< `alpha_num`).
    pub beta_num: u64,
    /// Common denominator.
    pub den: u64,
}

impl RatioPair {
    /// Creates the pair, validating `0 < β < α ≤ 1`.
    ///
    /// # Panics
    ///
    /// Panics if the ordering constraint is violated.
    pub fn new(alpha_num: u64, beta_num: u64, den: u64) -> Self {
        assert!(
            beta_num > 0 && beta_num < alpha_num && alpha_num <= den && den > 0,
            "need 0 < β < α ≤ 1"
        );
        RatioPair {
            alpha_num,
            beta_num,
            den,
        }
    }

    /// α as `f64` (reporting only).
    pub fn alpha(&self) -> f64 {
        self.alpha_num as f64 / self.den as f64
    }

    /// β as `f64` (reporting only).
    pub fn beta(&self) -> f64 {
        self.beta_num as f64 / self.den as f64
    }
}

/// The instance `I(x)` of Theorem 3.3: bit items have profit `den`
/// (representing 1), the special item has profit `beta_num`
/// (representing β); all weights equal the capacity.
#[derive(Debug)]
pub struct ApproxReduction {
    bits: Vec<bool>,
    ratios: RatioPair,
    bit_queries: AtomicU64,
}

impl ApproxReduction {
    /// Builds `I(x)`.
    pub fn new(bits: Vec<bool>, ratios: RatioPair) -> Self {
        ApproxReduction {
            bits,
            ratios,
            bit_queries: AtomicU64::new(0),
        }
    }

    /// Draws from the hard input distribution (as in Theorem 3.2).
    pub fn hard_input<R: Rng + ?Sized>(rng: &mut R, n: usize, ratios: RatioPair) -> Self {
        let mut bits = vec![false; n - 1];
        if rng.gen_bool(0.5) {
            bits[rng.gen_range(0..n - 1)] = true;
        }
        ApproxReduction::new(bits, ratios)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.bits.len() + 1
    }

    /// Returns `false`; instances always have the special item.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The special item's id.
    pub fn special_id(&self) -> ItemId {
        ItemId(self.bits.len())
    }

    /// Ground truth: the special item is in an α-approximate solution iff
    /// `OR(x) = 0`.
    pub fn special_in_alpha_approx(&self) -> bool {
        !self.bits.iter().any(|&bit| bit)
    }

    /// Simulated point query (one `x`-access for bit items).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn query(&self, id: ItemId) -> Item {
        if id == self.special_id() {
            return Item::new(self.ratios.beta_num, 1);
        }
        self.bit_queries.fetch_add(1, Ordering::Relaxed);
        let profit = if self.bits[id.index()] {
            self.ratios.den
        } else {
            0
        };
        Item::new(profit, 1)
    }

    /// Accesses charged so far.
    pub fn accesses(&self) -> u64 {
        self.bit_queries.load(Ordering::Relaxed)
    }
}

/// Measures the budgeted point-query strategy on the Theorem 3.3 family:
/// the success ceiling is the same `1/2 + q/(2(n−1))` curve *regardless
/// of α* — the experiment sweeps α to exhibit exactly that.
pub fn run_approx_experiment(
    n: usize,
    ratios: RatioPair,
    budget: u64,
    trials: u64,
    seed: u64,
) -> SuccessRate {
    let mut rng = ChaCha12Rng::seed_from_u64(seed);
    let mut successes = 0;
    for _ in 0..trials {
        let instance = ApproxReduction::hard_input(&mut rng, n, ratios);
        let mut order: Vec<usize> = (0..n - 1).collect();
        order.shuffle(&mut rng);
        let mut found_one = false;
        for &position in order.iter().take(budget.min((n - 1) as u64) as usize) {
            if instance.query(ItemId(position)).profit > 0 {
                found_one = true;
                break;
            }
        }
        if found_one != instance.special_in_alpha_approx() {
            successes += 1;
        }
    }
    SuccessRate {
        successes,
        trials,
        budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_pair_validation() {
        let ratios = RatioPair::new(50, 25, 100);
        assert!((ratios.alpha() - 0.5).abs() < 1e-12);
        assert!((ratios.beta() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "0 < β < α")]
    fn beta_must_be_below_alpha() {
        let _ = RatioPair::new(25, 50, 100);
    }

    #[test]
    fn ground_truth_matches_or() {
        let ratios = RatioPair::new(10, 5, 100);
        let zero = ApproxReduction::new(vec![false; 9], ratios);
        assert!(zero.special_in_alpha_approx());
        let mut bits = vec![false; 9];
        bits[4] = true;
        let one = ApproxReduction::new(bits, ratios);
        assert!(!one.special_in_alpha_approx());
    }

    #[test]
    fn query_semantics_and_accounting() {
        let ratios = RatioPair::new(10, 5, 100);
        let mut bits = vec![false; 4];
        bits[1] = true;
        let instance = ApproxReduction::new(bits, ratios);
        assert_eq!(instance.query(instance.special_id()).profit, 5);
        assert_eq!(instance.accesses(), 0);
        assert_eq!(instance.query(ItemId(1)).profit, 100);
        assert_eq!(instance.accesses(), 1);
    }

    #[test]
    fn hardness_is_alpha_independent() {
        // The success ceiling does not improve as α shrinks.
        let n = 400;
        let budget = (n / 10) as u64;
        for (alpha_num, beta_num) in [(99u64, 98u64), (50, 25), (2, 1)] {
            let ratios = RatioPair::new(alpha_num, beta_num, 100);
            let rate = run_approx_experiment(n, ratios, budget, 1500, 7);
            assert!(rate.rate() < 2.0 / 3.0, "α = {}: {rate}", ratios.alpha());
        }
    }

    #[test]
    fn full_budget_succeeds() {
        let ratios = RatioPair::new(50, 25, 100);
        let rate = run_approx_experiment(100, ratios, 99, 300, 8);
        assert_eq!(rate.rate(), 1.0);
    }
}
