//! Property-based tests of the `LCA-KP` decision machinery: every rule
//! that `CONVERT-GREEDY` can emit materializes to a feasible solution,
//! and per-item decisions match the materialized set (Algorithm 2 ≡
//! Algorithm 4 on every item).

use lcakp_core::{convert_greedy, SolutionRule};
use lcakp_knapsack::iky::{exact_eps, Epsilon, Partition, TildeInstance};
use lcakp_knapsack::{Instance, Item, NormalizedInstance};
use proptest::prelude::*;

fn arb_instance() -> impl Strategy<Value = Instance> {
    (
        proptest::collection::vec((1u64..400, 1u64..200), 2..40),
        1u64..800,
    )
        .prop_map(|(pairs, capacity)| Instance::from_pairs(pairs, capacity).unwrap())
}

fn rule_for(norm: &NormalizedInstance, eps: Epsilon) -> SolutionRule {
    let partition = Partition::compute(norm, eps);
    let seq = exact_eps(norm, eps, &partition);
    let tilde = TildeInstance::build_from_instance(norm, eps, partition.large(), &seq);
    let out = convert_greedy(&tilde, &seq);
    SolutionRule {
        eps,
        capacity: norm.as_instance().capacity(),
        large_selected: out.large_selected.into_iter().collect(),
        e_small: out.e_small,
        singleton: out.singleton,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Lemma 4.7 with the exact EPS: the materialized C is feasible, for
    /// every sampled instance and several ε.
    #[test]
    fn materialized_rule_is_feasible(instance in arb_instance()) {
        let norm = NormalizedInstance::new(instance).unwrap();
        for (num, den) in [(1u64, 3u64), (1, 5), (1, 8)] {
            let eps = Epsilon::new(num, den).unwrap();
            let rule = rule_for(&norm, eps);
            let selection = rule.materialize(&norm);
            prop_assert!(
                selection.is_feasible(norm.as_instance()),
                "ε = {num}/{den}: rule {rule} infeasible"
            );
        }
    }

    /// Per-item `decide` equals membership in the materialized selection
    /// (the LCA's per-query path and MAPPING-GREEDY agree item by item).
    #[test]
    fn decide_matches_materialize(instance in arb_instance()) {
        let norm = NormalizedInstance::new(instance).unwrap();
        let eps = Epsilon::new(1, 4).unwrap();
        let rule = rule_for(&norm, eps);
        let selection = rule.materialize(&norm);
        for (id, item) in norm.as_instance().iter() {
            prop_assert_eq!(
                selection.contains(id),
                rule.decide(norm.norms(), id, item).include
            );
        }
    }

    /// Large items the rule selects really are large-class items.
    #[test]
    fn selected_large_items_are_large(instance in arb_instance()) {
        let norm = NormalizedInstance::new(instance).unwrap();
        let eps = Epsilon::new(1, 4).unwrap();
        let rule = rule_for(&norm, eps);
        for &id in &rule.large_selected {
            prop_assert!(norm.nprofit(id) > eps.squared());
        }
    }

    /// The cut-off, when present, is at least ε² (so garbage items are
    /// automatically excluded, as the paper's Algorithm 2 relies on).
    #[test]
    fn cutoff_is_at_least_eps_squared(instance in arb_instance()) {
        let norm = NormalizedInstance::new(instance).unwrap();
        let eps = Epsilon::new(1, 4).unwrap();
        let rule = rule_for(&norm, eps);
        if let Some(cutoff) = rule.e_small {
            // key/2^32 ≥ ε² ⇔ key·den² ≥ num²·2^32 — up to the tie-break
            // perturbation of the low TIE_BITS bits.
            let num = eps.num() as u128;
            let den = eps.den() as u128;
            let slack = (1u128 << lcakp_knapsack::Norms::TIE_BITS) * den * den;
            prop_assert!(
                (cutoff as u128) * den * den + slack >= num * num * (1u128 << 32),
                "cut-off {cutoff} below ε²"
            );
        }
    }

    /// Rules are deterministic functions of (instance, ε).
    #[test]
    fn rule_construction_is_deterministic(instance in arb_instance()) {
        let norm = NormalizedInstance::new(instance).unwrap();
        let eps = Epsilon::new(1, 5).unwrap();
        prop_assert_eq!(rule_for(&norm, eps), rule_for(&norm, eps));
    }

    /// The empty rule rejects every item of every instance.
    #[test]
    fn empty_rule_rejects_all(instance in arb_instance()) {
        let norm = NormalizedInstance::new(instance).unwrap();
        let rule = SolutionRule::empty(
            Epsilon::new(1, 2).unwrap(),
            norm.as_instance().capacity(),
        );
        for (id, item) in norm.as_instance().iter() {
            prop_assert!(!rule.decide(norm.norms(), id, item).include);
        }
    }
}

/// Zero-weight items require care: they are always addable, and a rule
/// with a finite cut-off must include or exclude them purely by
/// efficiency (infinite efficiency passes any cut-off).
#[test]
fn zero_weight_items_pass_any_cutoff() {
    let instance =
        Instance::new(vec![Item::new(1, 0), Item::new(50, 5), Item::new(3, 6)], 5).unwrap();
    let norm = NormalizedInstance::new(instance).unwrap();
    let eps = Epsilon::new(1, 3).unwrap();
    let mut rule = SolutionRule::empty(eps, 5);
    rule.e_small = Some(u64::MAX);
    let answer = rule.decide(norm.norms(), lcakp_knapsack::ItemId(0), Item::new(1, 0));
    assert!(
        answer.include,
        "infinite efficiency must clear any threshold"
    );
}
