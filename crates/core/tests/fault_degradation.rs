//! Property tests of the degradation ladder: under a fixed `(Seed,
//! FaultPlan)` pair the *degraded* answers are as reproducible as the
//! fault sequence itself, and degradation never breaks feasibility.

use lcakp_core::solution_audit::assemble_audited;
use lcakp_core::{LcaKp, RetryPolicy};
use lcakp_knapsack::iky::Epsilon;
use lcakp_knapsack::NormalizedInstance;
use lcakp_oracle::{FaultPlan, FaultyOracle, InstanceOracle, Seed};
use lcakp_reproducible::SampleBudget;
use lcakp_workloads::{Family, WorkloadSpec};
use proptest::prelude::*;

fn workload(seed: u64) -> NormalizedInstance {
    WorkloadSpec::new(Family::SmallDominated, 40, seed)
        .generate_normalized()
        .expect("workload generates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same `Seed` + same `FaultPlan` ⇒ identical assembled answers and
    /// identical audit trail, even when most queries degrade. With no
    /// retries and a substantial transient rate, nearly every query
    /// aborts at a seed-determined access — so agreement here is the
    /// replayability of the whole ladder, not of the happy path.
    #[test]
    fn degraded_answers_replay_for_fixed_seed_and_plan(
        rate_pct in 10u32..60,
        fault_lane in 0u64..500,
        rng_seed in 0u64..500,
        workload_seed in 0u64..500,
    ) {
        let norm = workload(workload_seed);
        let plan = FaultPlan::transient(f64::from(rate_pct) / 100.0);
        let lca = LcaKp::new(Epsilon::new(1, 3).expect("valid eps"))
            .expect("lca builds")
            .with_budget(SampleBudget::Calibrated { factor: 0.01 })
            .with_retry_policy(RetryPolicy::none());
        let shared = Seed::from_entropy_u64(7);

        let run = |_: ()| {
            let inner = InstanceOracle::new(&norm);
            let faulty =
                FaultyOracle::new(&inner, plan, Seed::from_entropy_u64(fault_lane));
            let mut rng = Seed::from_entropy_u64(rng_seed).rng();
            assemble_audited(&lca, &faulty, &mut rng, &shared).expect("no hard errors")
        };
        let (selection_a, stats_a) = run(());
        let (selection_b, stats_b) = run(());

        let answers_a: Vec<bool> =
            (0..norm.len()).map(|i| selection_a.contains(lcakp_knapsack::ItemId(i))).collect();
        let answers_b: Vec<bool> =
            (0..norm.len()).map(|i| selection_b.contains(lcakp_knapsack::ItemId(i))).collect();
        prop_assert_eq!(answers_a, answers_b);
        prop_assert_eq!(stats_a, stats_b);
        // Degraded answers are "no": the assembled selection is feasible
        // whatever the fault pattern.
        prop_assert!(selection_a.is_feasible(norm.as_instance()));
    }
}
