//! The LCA abstraction (Definition 2.2 of the paper) and the per-query
//! decision rule of `LCA-KP`.

use crate::LcaError;
use lcakp_knapsack::iky::Epsilon;
use lcakp_knapsack::{Item, ItemId, Norms, Selection};
use lcakp_oracle::{ItemOracle, Seed, WeightedSampler};
use rand::Rng;
use std::collections::BTreeSet;
use std::fmt;

/// Why an LCA answered the way it did — surfaced for experiments and
/// debugging; the boolean `include` alone is the model's answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DecisionReason {
    /// Large item present in the greedy prefix of Ĩ (or the singleton
    /// winner).
    LargeSelected,
    /// Large item not selected by the greedy prefix.
    LargeNotSelected,
    /// Non-large item with efficiency at or above the small cut-off.
    SmallAboveCutoff,
    /// Non-large item with efficiency below the small cut-off.
    SmallBelowCutoff,
    /// Non-large item, and the rule carries no small cut-off (`e_small =
    /// −1` in the paper's notation).
    NoSmallCutoff,
    /// The item's weight exceeds the capacity: no feasible solution can
    /// contain it (the paper's Definition 2.2 assumes this never occurs).
    Oversized,
    /// The trivial always-no baseline answered.
    TrivialEmpty,
    /// A full-scan baseline answered from a complete solve.
    FullScan,
    /// Oracle access failed persistently; the algorithm degraded to the
    /// trivial always-no rule (consistent with the feasible solution ∅).
    DegradedFallback,
}

impl fmt::Display for DecisionReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            DecisionReason::LargeSelected => "large-selected",
            DecisionReason::LargeNotSelected => "large-not-selected",
            DecisionReason::SmallAboveCutoff => "small-above-cutoff",
            DecisionReason::SmallBelowCutoff => "small-below-cutoff",
            DecisionReason::NoSmallCutoff => "no-small-cutoff",
            DecisionReason::Oversized => "oversized",
            DecisionReason::TrivialEmpty => "trivial-empty",
            DecisionReason::FullScan => "full-scan",
            DecisionReason::DegradedFallback => "degraded-fallback",
        };
        write!(f, "{text}")
    }
}

/// The answer to one LCA query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LcaAnswer {
    /// Whether item `i` is part of the solution the LCA answers
    /// according to.
    pub include: bool,
    /// Diagnostic classification of the decision.
    pub reason: DecisionReason,
}

impl fmt::Display for LcaAnswer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({})",
            if self.include { "yes" } else { "no" },
            self.reason
        )
    }
}

/// A Local Computation Algorithm for Knapsack (Definition 2.2): stateless
/// query access to a feasible solution determined by the instance and the
/// shared seed only.
///
/// Implementations must not retain state between
/// [`KnapsackLca::query`] calls — the method takes `&self`, and all
/// randomness beyond the fresh sampling entropy must come from `seed`.
/// Parallelizability (Definition 2.3) and query-order obliviousness
/// (Definition 2.4) follow from this signature and are *audited* by
/// [`crate::consistency`].
pub trait KnapsackLca {
    /// Answers whether item `item` belongs to the solution.
    ///
    /// * `oracle` — query and weighted-sampling access to the instance;
    /// * `rng` — fresh sampling entropy (the i.i.d. channel);
    /// * `seed` — the shared read-only random tape `r`.
    ///
    /// # Errors
    ///
    /// Returns [`LcaError`] if the configuration demands more samples
    /// than the safety cap or an underlying computation fails.
    fn query<O, R>(
        &self,
        oracle: &O,
        rng: &mut R,
        item: ItemId,
        seed: &Seed,
    ) -> Result<LcaAnswer, LcaError>
    where
        O: ItemOracle + WeightedSampler,
        R: Rng + ?Sized;

    /// Answers every item of the instance by *independent* queries (the
    /// honest LCA usage) and assembles the selection.
    ///
    /// # Errors
    ///
    /// Propagates the first query error.
    fn assemble<O, R>(&self, oracle: &O, rng: &mut R, seed: &Seed) -> Result<Selection, LcaError>
    where
        O: ItemOracle + WeightedSampler,
        R: Rng + ?Sized,
    {
        let mut selection = Selection::new(oracle.len());
        for index in 0..oracle.len() {
            let answer = self.query(oracle, rng, ItemId(index), seed)?;
            if answer.include {
                selection.insert(ItemId(index));
            }
        }
        Ok(selection)
    }
}

/// The distilled per-query decision rule of `LCA-KP` (Algorithm 2 lines
/// 20–24): a set of selected large items plus an optional efficiency
/// cut-off for everything else.
///
/// Two runs that construct the same rule answer every query identically;
/// `LCA-KP`'s consistency analysis (Lemma 4.9) is exactly the statement
/// that independent runs construct the same rule with probability
/// `1 − ε`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolutionRule {
    /// ε the rule was built for.
    pub eps: Epsilon,
    /// The weight limit `K` — used for the local oversized-item check
    /// (Definition 2.2 assumes every weight ≤ K; the rule enforces it on
    /// general instances).
    pub capacity: u64,
    /// Ids of large items the rule includes.
    pub large_selected: BTreeSet<ItemId>,
    /// Efficiency-key cut-off for non-large items (`None` encodes the
    /// paper's `e_small = −1`).
    pub e_small: Option<u64>,
    /// Whether the rule came from the singleton branch of
    /// `CONVERT-GREEDY` (`B_indicator`).
    pub singleton: bool,
}

impl SolutionRule {
    /// The empty rule: answers **no** to everything (the trivial feasible
    /// solution ∅).
    pub fn empty(eps: Epsilon, capacity: u64) -> Self {
        SolutionRule {
            eps,
            capacity,
            large_selected: BTreeSet::new(),
            e_small: None,
            singleton: false,
        }
    }

    /// Applies the rule to one item (Algorithm 2 lines 20–24). All
    /// comparisons are exact.
    pub fn decide(&self, norms: Norms, id: ItemId, item: Item) -> LcaAnswer {
        if item.weight > self.capacity {
            // No feasible solution contains an oversized item — a purely
            // local check (the LCA knows K and the queried item).
            return LcaAnswer {
                include: false,
                reason: DecisionReason::Oversized,
            };
        }
        let eps_sq = self.eps.squared();
        if norms.nprofit_of(item.profit) > eps_sq {
            // Large item: membership in the selected prefix.
            if self.large_selected.contains(&id) {
                LcaAnswer {
                    include: true,
                    reason: DecisionReason::LargeSelected,
                }
            } else {
                LcaAnswer {
                    include: false,
                    reason: DecisionReason::LargeNotSelected,
                }
            }
        } else if let Some(cutoff) = self.e_small {
            // Thresholds live in the tie-broken key order (a deterministic
            // total refinement of efficiency — see
            // `Norms::tie_broken_efficiency_key`), so membership is a
            // plain integer comparison.
            if norms.tie_broken_efficiency_key(id, item) >= cutoff {
                LcaAnswer {
                    include: true,
                    reason: DecisionReason::SmallAboveCutoff,
                }
            } else {
                LcaAnswer {
                    include: false,
                    reason: DecisionReason::SmallBelowCutoff,
                }
            }
        } else {
            LcaAnswer {
                include: false,
                reason: DecisionReason::NoSmallCutoff,
            }
        }
    }

    /// Materializes the full solution `C` over an instance — the paper's
    /// `MAPPING-GREEDY` (Algorithm 4). This is the *audit* path (it reads
    /// the entire instance); honest LCA usage answers per-item via
    /// [`SolutionRule::decide`].
    pub fn materialize(&self, norm: &lcakp_knapsack::NormalizedInstance) -> Selection {
        let norms = norm.norms();
        let mut selection = Selection::new(norm.len());
        for (id, item) in norm.as_instance().iter() {
            if self.decide(norms, id, item).include {
                selection.insert(id);
            }
        }
        selection
    }
}

impl fmt::Display for SolutionRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SolutionRule(large={}, e_small={:?}, singleton={})",
            self.large_selected.len(),
            self.e_small,
            self.singleton
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcakp_knapsack::{Instance, NormalizedInstance};

    fn norm() -> NormalizedInstance {
        // Total profit 82: item 0 (p=60) is large at ε = 1/2 (ε² = 1/4,
        // threshold 20.5); item 1 is efficient and small; item 2 fits but
        // is inefficient.
        NormalizedInstance::new(Instance::from_pairs([(60, 10), (20, 2), (2, 12)], 12).unwrap())
            .unwrap()
    }

    fn eps() -> Epsilon {
        Epsilon::new(1, 2).unwrap()
    }

    #[test]
    fn empty_rule_rejects_everything() {
        let norm = norm();
        let rule = SolutionRule::empty(eps(), 12);
        for (id, item) in norm.as_instance().iter() {
            assert!(!rule.decide(norm.norms(), id, item).include);
        }
    }

    #[test]
    fn large_membership_decides_large_items() {
        let norm = norm();
        let mut rule = SolutionRule::empty(eps(), 12);
        rule.large_selected.insert(ItemId(0));
        let answer = rule.decide(norm.norms(), ItemId(0), norm.item(ItemId(0)));
        assert!(answer.include);
        assert_eq!(answer.reason, DecisionReason::LargeSelected);
    }

    #[test]
    fn cutoff_decides_non_large_items() {
        let norm = norm();
        let mut rule = SolutionRule::empty(eps(), 12);
        // Item 1 has normalized efficiency (20/82)/(2/24) ≈ 2.9; item 2
        // has ≈ 0.05. A cut-off at efficiency 1.0 (key 2^32) separates
        // them.
        rule.e_small = Some(1u64 << 32);
        let answer = rule.decide(norm.norms(), ItemId(1), norm.item(ItemId(1)));
        assert!(answer.include);
        assert_eq!(answer.reason, DecisionReason::SmallAboveCutoff);
        let answer = rule.decide(norm.norms(), ItemId(2), norm.item(ItemId(2)));
        assert!(!answer.include);
        assert_eq!(answer.reason, DecisionReason::SmallBelowCutoff);
    }

    #[test]
    fn materialize_matches_per_item_decisions() {
        let norm = norm();
        let mut rule = SolutionRule::empty(eps(), 12);
        rule.large_selected.insert(ItemId(0));
        rule.e_small = Some(1u64 << 32);
        let selection = rule.materialize(&norm);
        for (id, item) in norm.as_instance().iter() {
            assert_eq!(
                selection.contains(id),
                rule.decide(norm.norms(), id, item).include
            );
        }
    }

    #[test]
    fn answer_and_reason_display() {
        let answer = LcaAnswer {
            include: true,
            reason: DecisionReason::SmallAboveCutoff,
        };
        assert_eq!(answer.to_string(), "yes (small-above-cutoff)");
    }
}
