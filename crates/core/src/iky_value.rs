//! The IKY12 constant-time *value* approximation (Section 4
//! preliminaries; Lemma 4.4), which `LCA-KP` descends from.
//!
//! Given weighted sampling access, the algorithm of Ito, Kiyoshima and
//! Yoshida estimates the *value* of an optimal solution (not the solution
//! itself) to additive `±O(ε)` of the normalized optimum: sample the
//! large items (Lemma 4.2), estimate an equally partitioning sequence
//! from a second sample, build Ĩ, and solve Ĩ exactly. Note that unlike
//! `LCA-KP` it has no consistency requirement, so plain empirical
//! quantiles suffice here.

use crate::LcaError;
use lcakp_knapsack::iky::{tilde_optimum, EpsSequence, Epsilon, TildeInstance, MU_SHIFT};
use lcakp_knapsack::{Item, ItemId};
use lcakp_oracle::{ItemOracle, WeightedSampler};
use lcakp_reproducible::naive_quantile;
use rand::Rng;

/// Output of one run of the IKY12 value-approximation algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IkyValueEstimate {
    /// Estimated normalized optimum (the paper's `OPT(Ĩ) − ε`, a
    /// `(1, 6ε)`-approximation of `OPT(I)` by Lemma 4.4).
    pub value: f64,
    /// Raw `OPT(Ĩ)` before the `−ε` correction, normalized.
    pub tilde_optimum: f64,
    /// Number of weighted samples consumed.
    pub samples: u64,
}

/// Runs the IKY12 value approximation.
///
/// * `sample_budget` — total weighted samples to spend (half on the
///   large-item collection, half on the EPS estimation). The paper's
///   choice is `O(ε⁻⁴ log ε⁻¹)` for each.
///
/// # Errors
///
/// Returns [`LcaError`] if Ĩ's exact solver exhausts its node budget
/// (pathological ε only).
pub fn iky_value_estimate<O, R>(
    oracle: &O,
    rng: &mut R,
    eps: Epsilon,
    sample_budget: u64,
) -> Result<IkyValueEstimate, LcaError>
where
    O: ItemOracle + WeightedSampler,
    R: Rng + ?Sized,
{
    let norms = oracle.norms();
    let eps_sq = eps.squared();
    let half = (sample_budget / 2).max(1);

    // Step 1: collect the large items (Lemma 4.2).
    let mut large: Vec<(ItemId, Item)> = Vec::new();
    for _ in 0..half {
        let (id, item) = oracle.try_sample_weighted(rng)?;
        if norms.nprofit_of(item.profit) > eps_sq {
            large.push((id, item));
        }
    }
    large.sort_by_key(|&(id, _)| id);
    large.dedup_by_key(|&mut (id, _)| id);
    let large_profit: u128 = large.iter().map(|&(_, item)| item.profit as u128).sum();
    let total_profit = norms.total_profit as u128;

    // Step 2: estimate the EPS from a second sample (empirical
    // quantiles — reproducibility is not needed for a value estimate).
    let residual = total_profit - large_profit;
    let seq = if residual * eps.den() as u128 >= eps.num() as u128 * total_profit {
        let residual_fraction = residual as f64 / total_profit as f64;
        let eps_f = eps.as_f64();
        let q = (eps_f + eps_f * eps_f / 2.0) / residual_fraction;
        let t = (1.0 / q).floor() as usize;
        let mut efficiencies: Vec<u128> = Vec::new();
        for _ in 0..half {
            let (id, item) = oracle.try_sample_weighted(rng)?;
            if norms.nprofit_of(item.profit) <= eps_sq {
                efficiencies.push(norms.tie_broken_efficiency_key(id, item) as u128);
            }
        }
        if efficiencies.is_empty() || t == 0 {
            EpsSequence::empty()
        } else {
            let mut keys = Vec::with_capacity(t);
            let mut previous = u64::MAX;
            for k in 1..=t {
                let p = (1.0 - k as f64 * q).max(0.0);
                let key = u64::try_from(naive_quantile(&efficiencies, p))
                    .unwrap_or(u64::MAX)
                    .min(previous);
                keys.push(key);
                previous = key;
            }
            let mut seq = EpsSequence::new(keys).map_err(LcaError::from)?;
            if let Some(&last) = seq.keys().last() {
                let num = eps.num() as u128;
                let den = eps.den() as u128;
                if (last as u128) * den * den < num * num * (1u128 << 32) {
                    seq.truncate_last();
                }
            }
            seq
        }
    } else {
        EpsSequence::empty()
    };

    // Step 3: build Ĩ and solve it exactly.
    let tilde = TildeInstance::build(norms, oracle.capacity(), eps, &large, &seq);
    let optimum_mu = tilde_optimum(&tilde).ok_or(LcaError::SampleBudgetTooLarge {
        needed: u64::MAX,
        cap: 0,
    })?;
    let tilde_value = optimum_mu as f64 / (1u128 << MU_SHIFT) as f64;
    Ok(IkyValueEstimate {
        value: (tilde_value - eps.as_f64()).max(0.0),
        tilde_optimum: tilde_value,
        samples: 2 * half,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcakp_knapsack::{solvers, Instance, NormalizedInstance};
    use lcakp_oracle::{InstanceOracle, Seed};
    use lcakp_workloads::{Family, WorkloadSpec};

    #[test]
    fn estimates_track_the_optimum() {
        let eps = Epsilon::new(1, 4).unwrap();
        for spec in [
            WorkloadSpec::new(Family::SmallDominated, 300, 1),
            WorkloadSpec::new(
                Family::LargeDominated {
                    heavy: 4,
                    heavy_profit: 2_000,
                },
                300,
                2,
            ),
        ] {
            let norm = spec.generate_normalized().unwrap();
            let oracle = InstanceOracle::new(&norm);
            let mut rng = Seed::from_entropy_u64(7).rng();
            let estimate = iky_value_estimate(&oracle, &mut rng, eps, 40_000).unwrap();
            let optimum = solvers::dp_by_weight(norm.as_instance()).unwrap().value;
            let normalized_opt = optimum as f64 / norm.total_profit() as f64;
            // Lemma 4.4: |estimate − OPT| ≤ 6ε (we allow 7ε for sampling
            // noise at this budget).
            assert!(
                (estimate.value - normalized_opt).abs() <= 7.0 * eps.as_f64(),
                "{spec}: estimate {} vs OPT {normalized_opt}",
                estimate.value
            );
        }
    }

    #[test]
    fn sample_accounting_matches_budget() {
        let eps = Epsilon::new(1, 3).unwrap();
        let norm = NormalizedInstance::new(
            Instance::from_pairs((1..=100u64).map(|i| (1 + i % 5, 1 + i % 9)), 100).unwrap(),
        )
        .unwrap();
        let oracle = InstanceOracle::new(&norm);
        let mut rng = Seed::from_entropy_u64(9).rng();
        let estimate = iky_value_estimate(&oracle, &mut rng, eps, 10_000).unwrap();
        assert_eq!(estimate.samples, 10_000);
        assert_eq!(oracle.stats().weighted_samples, 10_000);
    }

    #[test]
    fn value_is_never_negative() {
        let eps = Epsilon::new(1, 2).unwrap();
        let norm =
            NormalizedInstance::new(Instance::from_pairs([(1, 10), (1, 10)], 0).unwrap()).unwrap();
        let oracle = InstanceOracle::new(&norm);
        let mut rng = Seed::from_entropy_u64(5).rng();
        let estimate = iky_value_estimate(&oracle, &mut rng, eps, 1_000).unwrap();
        assert!(estimate.value >= 0.0);
    }
}
