//! `LCA-KP` — Algorithm 2 of the paper (Theorem 4.1).

use crate::convert_greedy::convert_greedy;
use crate::lca::{KnapsackLca, LcaAnswer, SolutionRule};
use crate::solution_audit::{DegradationReason, QueryAudit};
use crate::trivial::degraded_answer;
use crate::LcaError;
use lcakp_knapsack::iky::{EpsSequence, Epsilon, TildeInstance};
use lcakp_knapsack::{Item, ItemId};
use lcakp_oracle::{ItemOracle, Seed, WeightedSampler};
use lcakp_reproducible::{
    naive_quantile, rquantile, Domain, RQuantileConfig, ReproParams, SampleBudget,
};
use rand::Rng;
use std::fmt;

/// Which quantile algorithm supplies the EPS thresholds — the design
/// choice the paper motivates in Section 4.1 and this workspace ablates
/// in experiment E11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuantileEngine {
    /// The reproducible quantile of Algorithm 1 (the paper's choice).
    Reproducible,
    /// The raw empirical quantile — *breaks consistency*; ablation only.
    Naive,
}

/// The (τ, ρ, β) parameterization handed to the reproducible quantiles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReproProfile {
    /// The paper's parameters: τ = ε²/5, ρ = ε²/18, β = ρ/2 (Algorithm 2
    /// line 5). With `SampleBudget::Theoretical` this reproduces the
    /// `(1/ε)^{O(log* n)}` bound verbatim — and astronomically many
    /// samples at practical ε.
    Paper,
    /// Relaxed parameters for runnable experiments (`DESIGN.md` §3):
    /// the accuracy stays at the paper's τ = ε²/5 — the feasibility
    /// argument of Lemma 4.7 genuinely needs the ε² there — but ρ and β
    /// are explicit instead of the paper's ε²-scaled values. The
    /// consistency actually achieved is *measured* by experiment E6
    /// rather than guaranteed.
    Relaxed {
        /// Reproducibility target per quantile call.
        rho: f64,
        /// Failure probability per quantile call.
        beta: f64,
    },
}

/// Reusable per-worker sampling workspace for [`LcaKp`] queries.
///
/// Algorithm 2 buffers two sample sets per query: the distinct large
/// items of R (line 2) and the efficiency keys of Q (line 7). Both are
/// dead once the query's [`SolutionRule`] exists, so a serving loop can
/// hand the same scratch to every query and amortise the allocations to
/// zero — the buffers keep their high-water capacity across queries.
/// A fresh (empty) scratch gives byte-identical answers: the buffers
/// are cleared at each use, so only capacity persists, never contents.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// Distinct large items sampled from R (Algorithm 2 lines 1–3).
    large: Vec<(ItemId, Item)>,
    /// Small-item efficiency keys sampled from Q (lines 6–8).
    efficiencies: Vec<u128>,
}

/// How `LCA-KP` reacts to transient oracle faults: each failing access
/// is retried up to `max_retries` times (immediately — the fault model
/// is per-access, so there is nothing to back off from, and determinism
/// matters more than pacing). Non-transient failures are never retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries allowed per individual oracle access.
    pub max_retries: u32,
}

impl RetryPolicy {
    /// No retries: the first transient fault already degrades the query.
    pub fn none() -> Self {
        RetryPolicy { max_retries: 0 }
    }
}

impl Default for RetryPolicy {
    /// Three retries per access — enough that a per-access fault rate of
    /// 10% leaves a per-access failure probability of 10⁻⁴.
    fn default() -> Self {
        RetryPolicy { max_retries: 3 }
    }
}

/// The paper's `LCA-KP` (Algorithm 2): a stateless LCA answering
/// according to a feasible `(1/2, 6ε)`-approximate Knapsack solution,
/// given weighted sampling access.
///
/// ```
/// use lcakp_core::{KnapsackLca, LcaKp};
/// use lcakp_knapsack::iky::Epsilon;
/// use lcakp_knapsack::{Instance, ItemId, NormalizedInstance};
/// use lcakp_oracle::{InstanceOracle, Seed};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let norm = NormalizedInstance::new(Instance::from_pairs(
///     (1..=100u64).map(|i| (1 + i % 7, 1 + i % 5)),
///     40,
/// )?)?;
/// let oracle = InstanceOracle::new(&norm);
/// let lca = LcaKp::new(Epsilon::new(1, 4)?)?;
/// let seed = Seed::from_entropy_u64(7);
/// let mut rng = Seed::from_entropy_u64(99).rng();
/// let answer = lca.query(&oracle, &mut rng, ItemId(3), &seed)?;
/// println!("item 3: {answer}");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LcaKp {
    eps: Epsilon,
    budget: SampleBudget,
    engine: QuantileEngine,
    profile: ReproProfile,
    max_samples_per_query: u64,
    retry: RetryPolicy,
}

impl LcaKp {
    /// Creates an `LCA-KP` with the default runnable configuration:
    /// reproducible quantiles, relaxed profile (ρ = 0.1, β = 0.05),
    /// calibrated budget with factor 0.05.
    ///
    /// # Errors
    ///
    /// Returns [`LcaError::Knapsack`] if ε is invalid (propagated from
    /// [`Epsilon`] use; `eps` itself is already validated).
    pub fn new(eps: Epsilon) -> Result<Self, LcaError> {
        Ok(LcaKp {
            eps,
            budget: SampleBudget::Calibrated { factor: 0.05 },
            engine: QuantileEngine::Reproducible,
            profile: ReproProfile::Relaxed {
                rho: 0.1,
                beta: 0.05,
            },
            max_samples_per_query: 20_000_000,
            retry: RetryPolicy::default(),
        })
    }

    /// The paper's exact parameterization (Algorithm 2 line 5) with the
    /// theoretical sample-complexity formulas. **Warning**: at practical
    /// ε this demands astronomically many samples and every query will
    /// return [`LcaError::SampleBudgetTooLarge`]; it exists so that
    /// experiment E4 can *report* the theoretical curve.
    pub fn with_paper_parameters(eps: Epsilon) -> Self {
        LcaKp {
            eps,
            budget: SampleBudget::Theoretical,
            engine: QuantileEngine::Reproducible,
            profile: ReproProfile::Paper,
            max_samples_per_query: 20_000_000,
            retry: RetryPolicy::default(),
        }
    }

    /// Overrides the sample-budget policy.
    pub fn with_budget(mut self, budget: SampleBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Overrides the quantile engine (ablation hook).
    pub fn with_engine(mut self, engine: QuantileEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Overrides the reproducibility profile.
    pub fn with_profile(mut self, profile: ReproProfile) -> Self {
        self.profile = profile;
        self
    }

    /// Overrides the per-query sample safety cap.
    pub fn with_max_samples_per_query(mut self, cap: u64) -> Self {
        self.max_samples_per_query = cap;
        self
    }

    /// Overrides the transient-fault retry policy.
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The retry policy in effect.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// The configured ε.
    pub fn eps(&self) -> Epsilon {
        self.eps
    }

    /// The (τ, ρ, β) triple in effect.
    pub fn repro_params(&self) -> ReproParams {
        let eps = self.eps.as_f64();
        match self.profile {
            ReproProfile::Paper => {
                let rho = eps * eps / 18.0;
                ReproParams {
                    rho,
                    tau: eps * eps / 5.0,
                    beta: rho / 2.0,
                    domain_bits: 64,
                }
            }
            ReproProfile::Relaxed { rho, beta } => ReproParams {
                rho,
                tau: eps * eps / 5.0,
                beta,
                domain_bits: 64,
            },
        }
    }

    /// Coupon-collection sample count `m` (Algorithm 2 line 1 /
    /// Lemma 4.2 amplified to failure probability ε/3): the base
    /// `⌈6δ⁻¹(ln δ⁻¹ + 1)⌉` at δ = ε², repeated `⌈log₆(3/ε)⌉` times.
    pub fn coupon_samples(&self) -> u64 {
        let eps = self.eps.as_f64();
        let delta = eps * eps;
        let base = (6.0 / delta) * ((1.0 / delta).ln() + 1.0);
        let repeats = ((3.0 / eps).ln() / 6f64.ln()).ceil().max(1.0);
        (base * repeats).ceil() as u64
    }

    /// Upper bound on the counted oracle accesses one query can consume:
    /// coupon samples, plus the worst-case EPS-estimation samples (the
    /// residual fraction is at least ε whenever estimation runs at all),
    /// plus the final point query — all multiplied by `1 + max_retries`
    /// since every transient retry re-charges the access on decorated
    /// oracles.
    ///
    /// A serving layer compares this against a budget's `remaining()` to
    /// load-shed *before* dispatching a query that could only die
    /// mid-flight.
    pub fn worst_case_accesses(&self) -> u64 {
        let per_attempt = self
            .coupon_samples()
            .saturating_add(self.eps_estimation_samples_cap())
            .saturating_add(1);
        per_attempt.saturating_mul(1 + u64::from(self.retry.max_retries))
    }

    /// Worst-case number of weighted samples one EPS estimation draws:
    /// `⌈1.5·n_rq/ε⌉`, since the residual fraction passed to
    /// `estimate_eps` is at least ε whenever estimation runs at all.
    /// This is the runtime value the `eps-estimation-samples` symbol in
    /// the lint's probe-budget certificate is bound to when the
    /// certificate is cross-checked against counting oracles.
    pub fn eps_estimation_samples_cap(&self) -> u64 {
        let params = self.repro_params();
        let n_rq = self.budget.rquantile_samples(&params);
        ((1.5 * n_rq as f64) / self.eps.as_f64()).ceil() as u64
    }

    /// Builds the per-query [`SolutionRule`] (Algorithm 2 lines 1–19).
    /// Exposed so that experiments can inspect the rule itself; `query`
    /// is `build_rule` + [`SolutionRule::decide`].
    ///
    /// # Errors
    ///
    /// Returns [`LcaError::SampleBudgetTooLarge`] when the configuration
    /// requires more samples per query than the safety cap.
    pub fn build_rule<O, R>(
        &self,
        oracle: &O,
        rng: &mut R,
        seed: &Seed,
    ) -> Result<SolutionRule, LcaError>
    where
        O: ItemOracle + WeightedSampler,
        R: Rng + ?Sized,
    {
        let mut scratch = QueryScratch::default();
        self.build_rule_in(oracle, rng, seed, &mut scratch)
    }

    /// [`build_rule`](Self::build_rule) with the sampling workspace in a
    /// caller-owned [`QueryScratch`], so a serving loop reuses the same
    /// buffers query after query instead of allocating per query.
    ///
    /// # Errors
    ///
    /// Returns [`LcaError::SampleBudgetTooLarge`] when the configuration
    /// requires more samples per query than the safety cap.
    pub fn build_rule_in<O, R>(
        &self,
        oracle: &O,
        rng: &mut R,
        seed: &Seed,
        scratch: &mut QueryScratch,
    ) -> Result<SolutionRule, LcaError>
    where
        O: ItemOracle + WeightedSampler,
        R: Rng + ?Sized,
    {
        let mut retries = 0u64;
        self.build_rule_counted(oracle, rng, seed, &mut retries, scratch)
    }

    /// One weighted sample with bounded retry of transient faults; every
    /// exhausted retry budget surfaces as [`LcaError::Oracle`].
    fn sample_with_retry<O, R>(
        &self,
        oracle: &O,
        rng: &mut R,
        retries: &mut u64,
    ) -> Result<(ItemId, Item), LcaError>
    where
        O: WeightedSampler,
        R: Rng + ?Sized,
    {
        let mut attempts = 0u32;
        // lcakp-lint: loop-bound(retry-attempts) reason="every non-returning iteration increments attempts, and the retryable guard admits at most max_retries of them, so the body runs at most 1 + max_retries times"
        loop {
            match oracle.try_sample_weighted(rng) {
                Ok(sample) => return Ok(sample),
                Err(error) if error.is_retryable() && attempts < self.retry.max_retries => {
                    attempts += 1;
                    *retries += 1;
                }
                Err(error) => return Err(LcaError::Oracle(error)),
            }
        }
    }

    /// One point query with bounded retry of transient faults.
    // lcakp-lint: probe-budget(retry-attempts) reason="one counted try_query per loop iteration, and the retry loop below is bounded by retry-attempts = 1 + max_retries"
    fn query_with_retry<O>(
        &self,
        oracle: &O,
        id: ItemId,
        retries: &mut u64,
    ) -> Result<Item, LcaError>
    where
        O: ItemOracle,
    {
        let mut attempts = 0u32;
        // lcakp-lint: loop-bound(retry-attempts) reason="every non-returning iteration increments attempts, and the retryable guard admits at most max_retries of them, so the body runs at most 1 + max_retries times"
        loop {
            match oracle.try_query(id) {
                Ok(item) => return Ok(item),
                Err(error) if error.is_retryable() && attempts < self.retry.max_retries => {
                    attempts += 1;
                    *retries += 1;
                }
                Err(error) => return Err(LcaError::Oracle(error)),
            }
        }
    }

    /// [`build_rule`](Self::build_rule) with the retry counter threaded
    /// through, so audited queries can report retries spent.
    fn build_rule_counted<O, R>(
        &self,
        oracle: &O,
        rng: &mut R,
        seed: &Seed,
        retries: &mut u64,
        scratch: &mut QueryScratch,
    ) -> Result<SolutionRule, LcaError>
    where
        O: ItemOracle + WeightedSampler,
        R: Rng + ?Sized,
    {
        let norms = oracle.norms();
        let eps_sq = self.eps.squared();
        let total_profit = norms.total_profit as u128;

        // ---- Line 1–3: sample R, keep distinct large items. ----
        let m = self.coupon_samples();
        if m > self.max_samples_per_query {
            return Err(LcaError::SampleBudgetTooLarge {
                needed: m,
                cap: self.max_samples_per_query,
            });
        }
        scratch.large.clear();
        // lcakp-lint: loop-bound(coupon-samples) reason="m = coupon_samples() exactly; the symbolic name keeps the certificate readable across call sites"
        for _ in 0..m {
            let (id, item) = self.sample_with_retry(oracle, rng, retries)?;
            if norms.nprofit_of(item.profit) > eps_sq {
                scratch.large.push((id, item));
            }
        }
        scratch.large.sort_by_key(|&(id, _)| id);
        scratch.large.dedup_by_key(|&mut (id, _)| id);
        let large = &scratch.large;
        let large_profit: u128 = large.iter().map(|&(_, item)| item.profit as u128).sum();

        // ---- Lines 4–17: estimate the EPS when enough profit mass sits
        // outside the large items. 1 − p(L(Ĩ)) ≥ ε ⇔ (P − S)·den ≥ num·P.
        let residual = total_profit - large_profit;
        let seq = if residual * self.eps.den() as u128 >= self.eps.num() as u128 * total_profit {
            self.estimate_eps(
                oracle,
                rng,
                seed,
                residual as f64 / total_profit as f64,
                retries,
                &mut scratch.efficiencies,
            )?
        } else {
            EpsSequence::empty()
        };

        // ---- Line 18: construct Ĩ. ----
        let large = &scratch.large;
        let tilde = TildeInstance::build(norms, oracle.capacity(), self.eps, large, &seq);

        // ---- Line 19: CONVERT-GREEDY. ----
        let out = convert_greedy(&tilde, &seq);
        Ok(SolutionRule {
            eps: self.eps,
            capacity: oracle.capacity(),
            // lcakp-lint: allow(D011) reason="the selected-large set is the rule's output and is bounded by the ε-sized tilde instance, not by n"
            large_selected: out.large_selected.into_iter().collect(),
            e_small: out.e_small,
            singleton: out.singleton,
        })
    }

    /// Lines 5–15: sample Q, estimate the quantile thresholds, apply the
    /// `t' = t − 1` adjustment.
    fn estimate_eps<O, R>(
        &self,
        oracle: &O,
        rng: &mut R,
        seed: &Seed,
        residual_fraction: f64,
        retries: &mut u64,
        efficiencies: &mut Vec<u128>,
    ) -> Result<EpsSequence, LcaError>
    where
        O: ItemOracle + WeightedSampler,
        R: Rng + ?Sized,
    {
        let eps = self.eps.as_f64();
        let q = (eps + eps * eps / 2.0) / residual_fraction;
        let t = (1.0 / q).floor() as usize;
        if t == 0 {
            return Ok(EpsSequence::empty());
        }
        let params = self.repro_params();
        let n_rq = self.budget.rquantile_samples(&params);
        let a = ((1.5 * n_rq as f64) / residual_fraction).ceil() as u64;
        if a > self.max_samples_per_query {
            return Err(LcaError::SampleBudgetTooLarge {
                needed: a,
                cap: self.max_samples_per_query,
            });
        }

        // Sample Q, drop large items, keep efficiency keys (line 6–8).
        let norms = oracle.norms();
        let eps_sq = self.eps.squared();
        efficiencies.clear();
        efficiencies.reserve(a as usize);
        // lcakp-lint: loop-bound(eps-estimation-samples) reason="a = eps_estimation_samples_cap() at most; the symbolic name keeps the certificate readable across call sites"
        for _ in 0..a {
            let (id, item) = self.sample_with_retry(oracle, rng, retries)?;
            if norms.nprofit_of(item.profit) <= eps_sq {
                efficiencies.push(norms.tie_broken_efficiency_key(id, item) as u128);
            }
        }
        if efficiencies.is_empty() {
            // Degenerate: no small/garbage mass was seen; proceed with no
            // thresholds (the paper's failure event, probability ≤ ε/3).
            return Ok(EpsSequence::empty());
        }

        // Lines 9–10: ẽ_k = rQuantile(E, 1 − kq), made non-increasing.
        // lcakp-lint: allow(D011) reason="the t ≤ ⌈1/ε⌉ threshold keys are the query's output: EpsSequence must own them, so they cannot live in the scratch"
        let mut keys: Vec<u64> = Vec::with_capacity(t);
        let mut previous = u64::MAX;
        // lcakp-lint: loop-bound(eps-thresholds) reason="one rQuantile per EPS threshold: t ≤ ⌈1/ε⌉ by construction (Algorithm 2 line 9)"
        for k in 1..=t {
            let p = (1.0 - k as f64 * q).max(0.0);
            let value = match self.engine {
                QuantileEngine::Reproducible => {
                    let config = RQuantileConfig {
                        domain: Domain::new(64).map_err(LcaError::from)?,
                        p,
                        tau: params.tau.min(0.5),
                    };
                    rquantile(
                        efficiencies,
                        &config,
                        &seed.derive("lca-kp/rquantile", k as u64),
                    )?
                }
                QuantileEngine::Naive => naive_quantile(efficiencies, p),
            };
            // Saturating u128 → u64 without unwrap: quantiles above the
            // key domain clamp to the maximum key.
            let key = (value.min(u128::from(u64::MAX)) as u64).min(previous);
            // lcakp-lint: allow(D011) reason="appends one of the t ≤ ⌈1/ε⌉ owned threshold keys"
            keys.push(key);
            previous = key;
        }

        // Lines 11–14: drop ẽ_t if it fell below ε² (exact comparison:
        // key/2³² < ε² ⇔ key·den² < num²·2³²).
        let mut seq = EpsSequence::new(keys).map_err(LcaError::from)?;
        if let Some(&last) = seq.keys().last() {
            let num = self.eps.num() as u128;
            let den = self.eps.den() as u128;
            if (last as u128) * den * den < num * num * (1u128 << 32) {
                seq.truncate_last();
            }
        }
        Ok(seq)
    }
}

impl LcaKp {
    /// [`KnapsackLca::query`] with the degradation ladder's audit trail.
    ///
    /// The ladder, in order:
    ///
    /// 1. every oracle access retries transient faults up to the
    ///    [`RetryPolicy`];
    /// 2. a persistent failure (retries exhausted, detected corruption,
    ///    or an exhausted access budget) abandons the sampled rule and
    ///    answers from the trivial always-no rule of
    ///    [`EmptyLca`](crate::EmptyLca) — feasible and trivially
    ///    consistent — tagged
    ///    [`DegradedFallback`](crate::DecisionReason::DegradedFallback)
    ///    with the [`DegradationReason`] recorded in the audit.
    ///
    /// Non-oracle errors (out-of-range ids, impossible sample budgets)
    /// stay hard errors: they are configuration bugs, not faults.
    ///
    /// # Errors
    ///
    /// Returns [`LcaError::ItemOutOfRange`] /
    /// [`LcaError::SampleBudgetTooLarge`] as [`KnapsackLca::query`] does;
    /// oracle faults degrade instead of erroring.
    // lcakp-lint: probe-budget(retry-attempts * (coupon-samples + eps-estimation-samples + 1)) reason="matches worst_case_accesses(): per attempt, coupon_samples() weighted samples + eps_estimation_samples_cap() estimation samples + one final point query, re-charged across 1 + max_retries attempts"
    pub fn query_with_audit<O, R>(
        &self,
        oracle: &O,
        rng: &mut R,
        item: ItemId,
        seed: &Seed,
    ) -> Result<(LcaAnswer, QueryAudit), LcaError>
    where
        O: ItemOracle + WeightedSampler,
        R: Rng + ?Sized,
    {
        let mut scratch = QueryScratch::default();
        self.query_with_audit_in(oracle, rng, item, seed, &mut scratch)
    }

    /// [`query_with_audit`](Self::query_with_audit) with the sampling
    /// workspace in a caller-owned [`QueryScratch`]: the serving runtime
    /// hands each worker's scratch to every query it serves, so steady
    /// state allocates nothing per query. Answers are byte-identical to
    /// the scratch-free variant.
    ///
    /// # Errors
    ///
    /// As [`query_with_audit`](Self::query_with_audit).
    // lcakp-lint: probe-budget(retry-attempts * (coupon-samples + eps-estimation-samples + 1)) reason="matches worst_case_accesses(): per attempt, coupon_samples() weighted samples + eps_estimation_samples_cap() estimation samples + one final point query, re-charged across 1 + max_retries attempts"
    pub fn query_with_audit_in<O, R>(
        &self,
        oracle: &O,
        rng: &mut R,
        item: ItemId,
        seed: &Seed,
        scratch: &mut QueryScratch,
    ) -> Result<(LcaAnswer, QueryAudit), LcaError>
    where
        O: ItemOracle + WeightedSampler,
        R: Rng + ?Sized,
    {
        if item.index() >= oracle.len() {
            return Err(LcaError::ItemOutOfRange {
                index: item.index(),
                len: oracle.len(),
            });
        }
        let before = oracle.stats();
        let mut retries = 0u64;
        let outcome = self
            .build_rule_counted(oracle, rng, seed, &mut retries, scratch)
            .and_then(|rule| {
                let queried = self.query_with_retry(oracle, item, &mut retries)?;
                Ok(rule.decide(oracle.norms(), item, queried))
            });
        let budget_consumed = oracle.stats().since(before).total();
        match outcome {
            Ok(answer) => Ok((
                answer,
                QueryAudit {
                    degraded: None,
                    retries_used: retries,
                    budget_consumed,
                },
            )),
            Err(LcaError::Oracle(error)) => match DegradationReason::from_oracle(error) {
                Some(reason) => Ok((
                    degraded_answer(),
                    QueryAudit {
                        degraded: Some(reason),
                        retries_used: retries,
                        budget_consumed,
                    },
                )),
                // Not a fault (e.g. out-of-range id from the oracle):
                // surface it.
                None => Err(LcaError::Oracle(error)),
            },
            Err(other) => Err(other),
        }
    }
}

impl KnapsackLca for LcaKp {
    // lcakp-lint: probe-budget(retry-attempts * (coupon-samples + eps-estimation-samples + 1)) reason="matches worst_case_accesses(): per attempt, coupon_samples() weighted samples + eps_estimation_samples_cap() estimation samples + one final point query, re-charged across 1 + max_retries attempts"
    fn query<O, R>(
        &self,
        oracle: &O,
        rng: &mut R,
        item: ItemId,
        seed: &Seed,
    ) -> Result<LcaAnswer, LcaError>
    where
        O: ItemOracle + WeightedSampler,
        R: Rng + ?Sized,
    {
        self.query_with_audit(oracle, rng, item, seed)
            .map(|(answer, _)| answer)
    }
}

impl fmt::Display for LcaKp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LCA-KP(ε={}, engine={:?}, profile={:?}, budget={:?})",
            self.eps, self.engine, self.profile, self.budget
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcakp_knapsack::{Instance, NormalizedInstance, Selection};
    use lcakp_oracle::InstanceOracle;
    use lcakp_workloads::{Family, WorkloadSpec};

    fn quick_lca(eps: Epsilon) -> LcaKp {
        // Small budgets so unit tests stay fast; statistical quality is
        // covered by the integration tests and experiments.
        LcaKp::new(eps)
            .unwrap()
            .with_budget(SampleBudget::Calibrated { factor: 0.01 })
    }

    #[test]
    fn paper_parameters_are_derived_correctly() {
        let eps = Epsilon::new(1, 10).unwrap();
        let lca = LcaKp::with_paper_parameters(eps);
        let params = lca.repro_params();
        assert!((params.tau - 0.002).abs() < 1e-12); // ε²/5 at ε = 0.1
        assert!((params.rho - 0.01 / 18.0).abs() < 1e-12); // ε²/18
        assert!((params.beta - params.rho / 2.0).abs() < 1e-15);
    }

    #[test]
    fn theoretical_budget_errors_gracefully() {
        let eps = Epsilon::new(1, 10).unwrap();
        let lca = LcaKp::with_paper_parameters(eps);
        // All-small instance: the EPS-estimation path (the expensive one)
        // must run, and the theoretical budget at ε = 1/10 is astronomic.
        let norm = NormalizedInstance::new(
            Instance::from_pairs(std::iter::repeat_n((1u64, 1u64), 200), 50).unwrap(),
        )
        .unwrap();
        let oracle = InstanceOracle::new(&norm);
        let mut rng = Seed::from_entropy_u64(0).rng();
        let seed = Seed::from_entropy_u64(1);
        let result = lca.query(&oracle, &mut rng, ItemId(0), &seed);
        assert!(matches!(result, Err(LcaError::SampleBudgetTooLarge { .. })));
    }

    #[test]
    fn coupon_samples_grow_with_one_over_eps() {
        let small = quick_lca(Epsilon::new(1, 2).unwrap()).coupon_samples();
        let large = quick_lca(Epsilon::new(1, 8).unwrap()).coupon_samples();
        assert!(large > small);
    }

    #[test]
    fn query_answers_and_is_stateless() {
        let eps = Epsilon::new(1, 3).unwrap();
        let lca = quick_lca(eps);
        let spec = WorkloadSpec::new(
            Family::LargeDominated {
                heavy: 3,
                heavy_profit: 5_000,
            },
            200,
            5,
        );
        let norm = spec.generate_normalized().unwrap();
        let oracle = InstanceOracle::new(&norm);
        let seed = Seed::from_entropy_u64(11);
        let mut rng = Seed::from_entropy_u64(12).rng();
        for index in [0usize, 1, 50, 199] {
            let answer = lca.query(&oracle, &mut rng, ItemId(index), &seed).unwrap();
            let _ = answer.include;
        }
    }

    #[test]
    fn rule_is_identical_for_identical_randomness() {
        let eps = Epsilon::new(1, 3).unwrap();
        let lca = quick_lca(eps);
        let spec = WorkloadSpec::new(Family::SmallDominated, 300, 6);
        let norm = spec.generate_normalized().unwrap();
        let oracle = InstanceOracle::new(&norm);
        let seed = Seed::from_entropy_u64(21);
        // Same sampling stream AND same seed → byte-identical rule.
        let rule_a = lca
            .build_rule(&oracle, &mut Seed::from_entropy_u64(5).rng(), &seed)
            .unwrap();
        let rule_b = lca
            .build_rule(&oracle, &mut Seed::from_entropy_u64(5).rng(), &seed)
            .unwrap();
        assert_eq!(rule_a, rule_b);
    }

    #[test]
    fn assembled_solution_is_feasible() {
        let eps = Epsilon::new(1, 3).unwrap();
        let lca = quick_lca(eps);
        for spec in [
            WorkloadSpec::new(Family::SmallDominated, 150, 1),
            WorkloadSpec::new(
                Family::LargeDominated {
                    heavy: 4,
                    heavy_profit: 4_000,
                },
                150,
                2,
            ),
            WorkloadSpec::new(
                Family::GarbageMix {
                    garbage_percent: 20,
                },
                150,
                3,
            ),
        ] {
            let norm = spec.generate_normalized().unwrap();
            let oracle = InstanceOracle::new(&norm);
            let seed = Seed::from_entropy_u64(31);
            let mut rng = Seed::from_entropy_u64(32).rng();
            // Materialize from one rule (MAPPING-GREEDY): feasibility is
            // Lemma 4.7.
            let rule = lca.build_rule(&oracle, &mut rng, &seed).unwrap();
            let selection: Selection = rule.materialize(&norm);
            assert!(
                selection.is_feasible(norm.as_instance()),
                "{spec}: rule {rule} produced infeasible selection"
            );
        }
    }

    #[test]
    fn garbage_items_are_rejected() {
        let eps = Epsilon::new(1, 5).unwrap();
        let lca = quick_lca(eps);
        let spec = WorkloadSpec::new(
            Family::GarbageMix {
                garbage_percent: 30,
            },
            400,
            9,
        );
        let norm = spec.generate_normalized().unwrap();
        let oracle = InstanceOracle::new(&norm);
        let seed = Seed::from_entropy_u64(41);
        let mut rng = Seed::from_entropy_u64(42).rng();
        let partition = lcakp_knapsack::iky::Partition::compute(&norm, eps);
        assert!(!partition.garbage().is_empty());
        for &id in partition.garbage().iter().take(5) {
            let answer = lca.query(&oracle, &mut rng, id, &seed).unwrap();
            assert!(!answer.include, "garbage item {id} was included");
        }
    }

    #[test]
    fn out_of_range_query_errors() {
        let eps = Epsilon::new(1, 3).unwrap();
        let lca = quick_lca(eps);
        let norm =
            NormalizedInstance::new(Instance::from_pairs([(5, 1), (3, 1)], 1).unwrap()).unwrap();
        let oracle = InstanceOracle::new(&norm);
        let mut rng = Seed::from_entropy_u64(1).rng();
        assert!(lca
            .query(&oracle, &mut rng, ItemId(2), &Seed::from_entropy_u64(0))
            .is_err());
    }

    #[test]
    fn display_mentions_engine() {
        let lca = quick_lca(Epsilon::new(1, 4).unwrap());
        assert!(lca.to_string().contains("Reproducible"));
    }

    #[test]
    fn query_degrades_to_trivial_rule_under_budget_exhaustion() {
        use crate::lca::DecisionReason;
        use crate::solution_audit::DegradationReason;
        use lcakp_oracle::BudgetedOracle;

        let eps = Epsilon::new(1, 3).unwrap();
        let lca = quick_lca(eps);
        let spec = WorkloadSpec::new(Family::SmallDominated, 200, 4);
        let norm = spec.generate_normalized().unwrap();
        let inner = InstanceOracle::new(&norm);
        // A cap of 10 is far below the coupon-sampling budget, so the
        // rule construction must hit the wall and degrade.
        let oracle = BudgetedOracle::new(&inner, 10);
        let seed = Seed::from_entropy_u64(51);
        let mut rng = Seed::from_entropy_u64(52).rng();
        let (answer, audit) = lca
            .query_with_audit(&oracle, &mut rng, ItemId(0), &seed)
            .unwrap();
        assert!(!answer.include, "degraded answer must be the trivial no");
        assert_eq!(answer.reason, DecisionReason::DegradedFallback);
        assert_eq!(
            audit.degraded,
            Some(DegradationReason::BudgetExhausted { spent: 10, cap: 10 })
        );
        assert_eq!(audit.budget_consumed, 10, "exactly the cap was spent");

        // The infallible trait path degrades identically instead of
        // panicking or erroring.
        let answer = lca.query(&oracle, &mut rng, ItemId(0), &seed).unwrap();
        assert_eq!(answer.reason, DecisionReason::DegradedFallback);
    }

    #[test]
    fn transient_faults_are_retried_and_answers_match_fault_free() {
        use lcakp_oracle::{FaultPlan, FaultyOracle};

        let eps = Epsilon::new(1, 3).unwrap();
        let lca = quick_lca(eps).with_retry_policy(RetryPolicy { max_retries: 8 });
        let spec = WorkloadSpec::new(Family::SmallDominated, 200, 4);
        let norm = spec.generate_normalized().unwrap();
        let seed = Seed::from_entropy_u64(61);

        let clean = InstanceOracle::new(&norm);
        let (clean_answer, clean_audit) = lca
            .query_with_audit(
                &clean,
                &mut Seed::from_entropy_u64(62).rng(),
                ItemId(5),
                &seed,
            )
            .unwrap();

        // Retrying a transient fault repeats the access without touching
        // the caller's RNG stream, so the answer is unchanged.
        let inner = InstanceOracle::new(&norm);
        let faulty = FaultyOracle::new(
            &inner,
            FaultPlan::transient(0.05),
            Seed::from_entropy_u64(63),
        );
        let (answer, audit) = lca
            .query_with_audit(
                &faulty,
                &mut Seed::from_entropy_u64(62).rng(),
                ItemId(5),
                &seed,
            )
            .unwrap();
        assert_eq!(
            audit.degraded, None,
            "5% transients with 8 retries never persist"
        );
        assert!(audit.retries_used > 0, "faults must actually have fired");
        assert_eq!(answer, clean_answer);
        assert_eq!(clean_audit.retries_used, 0);
    }

    #[test]
    fn retry_policy_none_degrades_on_first_transient() {
        use crate::lca::DecisionReason;
        use crate::solution_audit::DegradationReason;
        use lcakp_oracle::{FaultPlan, FaultyOracle};

        let eps = Epsilon::new(1, 3).unwrap();
        let lca = quick_lca(eps).with_retry_policy(RetryPolicy::none());
        let spec = WorkloadSpec::new(Family::SmallDominated, 200, 4);
        let norm = spec.generate_normalized().unwrap();
        let inner = InstanceOracle::new(&norm);
        let faulty = FaultyOracle::new(
            &inner,
            FaultPlan::transient(0.5),
            Seed::from_entropy_u64(71),
        );
        let seed = Seed::from_entropy_u64(72);
        let mut rng = Seed::from_entropy_u64(73).rng();
        let (answer, audit) = lca
            .query_with_audit(&faulty, &mut rng, ItemId(0), &seed)
            .unwrap();
        assert_eq!(answer.reason, DecisionReason::DegradedFallback);
        assert_eq!(audit.degraded, Some(DegradationReason::RetriesExhausted));
        assert_eq!(audit.retries_used, 0);
    }
}
