//! Local Computation Algorithms for Knapsack — the algorithmic
//! contribution of Canonne–Li–Umboh (PODC 2025), Section 4.
//!
//! The centrepiece is [`LcaKp`] (the paper's Algorithm 2): a *stateless*
//! query algorithm which, given
//!
//! * weighted-sampling and point-query access to a Knapsack instance
//!   ([`lcakp_oracle`]), and
//! * a shared read-only random seed,
//!
//! answers "is item `i` in the solution?" so that — with probability
//! `1 − ε` over the seed — *all* answers, across any number of queries
//! and any number of independent algorithm instances, are consistent with
//! one feasible `(1/2, 6ε)`-approximate solution (Theorem 4.1).
//!
//! Per query, `LCA-KP`:
//!
//! 1. samples `m = O(ε⁻⁴ log ε⁻¹)` items by profit to collect every
//!    *large* item (coupon collection, Lemma 4.2);
//! 2. estimates an equally partitioning sequence of efficiency thresholds
//!    over the *small* items via **reproducible quantiles**
//!    ([`lcakp_reproducible`]) — the step that makes independent runs
//!    agree;
//! 3. builds the reduced instance Ĩ ([`lcakp_knapsack::iky`]) and runs
//!    [`convert_greedy`] (Algorithm 3), the modified-greedy
//!    1/2-approximation in threshold form;
//! 4. answers the query from the resulting [`SolutionRule`]: large items
//!    by membership in the greedy prefix, small items by comparing their
//!    exact efficiency to the cut-off threshold, garbage items by "no"
//!    (Algorithm 2 lines 20–24 / Algorithm 4).
//!
//! The crate also provides the trivial baseline LCAs ([`EmptyLca`],
//! [`FullScanLca`]), a multi-run / multi-thread [`consistency`] auditor
//! (Definitions 2.3–2.4), full-solution assembly and approximation audits
//! ([`solution_audit`]), and the IKY12 constant-time *value*
//! approximation ([`iky_value`]) the algorithm descends from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod consistency;
mod convert_greedy;
mod error;
pub mod iky_value;
mod lca;
mod lca_kp;
pub mod solution_audit;
mod trivial;

pub use cluster::{serve_queries, ClusterConfig, ClusterRun};
pub use consistency::ConsistencyReport;
pub use convert_greedy::{convert_greedy, ConvertGreedyOutput};
pub use error::LcaError;
pub use lca::{DecisionReason, KnapsackLca, LcaAnswer, SolutionRule};
pub use lca_kp::{LcaKp, QuantileEngine, QueryScratch, ReproProfile, RetryPolicy};
pub use solution_audit::{DegradationReason, DegradationStats, QueryAudit, ResponseTier};
pub use trivial::{degraded_answer, EmptyLca, FullScanLca};
