//! Approximation auditing: assemble an LCA's answers into a full
//! solution and measure it against the exact optimum — the machinery
//! behind experiment E5 (Theorem 4.1's `(1/2, 6ε)` guarantee) — plus the
//! per-query audit trail of the fault-degradation ladder (experiment
//! E13).

use crate::lca::KnapsackLca;
use crate::lca_kp::LcaKp;
use crate::LcaError;
use lcakp_knapsack::iky::Epsilon;
use lcakp_knapsack::{solvers, ItemId, NormalizedInstance, Selection};
use lcakp_oracle::{InstanceOracle, ItemOracle, OracleError, Seed, WeightedSampler};
use rand::Rng;
use std::fmt;

/// Why a query abandoned the sampled rule and fell back to the trivial
/// always-no answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum DegradationReason {
    /// Transient oracle failures persisted past the retry policy.
    RetriesExhausted,
    /// The oracle reported detected corruption; re-reading the same
    /// damaged cell cannot help.
    CorruptionDetected,
    /// The oracle's hard access budget ran out mid-query.
    BudgetExhausted {
        /// Accesses spent when the refusal fired.
        spent: u64,
        /// The cap that was hit.
        cap: u64,
    },
    /// The query's deadline passed on the serving layer's virtual clock
    /// before the rule construction finished.
    DeadlineExceeded,
}

impl DegradationReason {
    /// Classifies an oracle failure; `None` for failures that must stay
    /// hard errors (an out-of-range id is a caller bug, not a fault).
    pub fn from_oracle(error: OracleError) -> Option<Self> {
        match error {
            OracleError::Transient { .. } => Some(DegradationReason::RetriesExhausted),
            OracleError::Corrupted { .. } => Some(DegradationReason::CorruptionDetected),
            OracleError::BudgetExhausted { spent, cap } => {
                Some(DegradationReason::BudgetExhausted { spent, cap })
            }
            OracleError::DeadlineExceeded { .. } => Some(DegradationReason::DeadlineExceeded),
            OracleError::OutOfRange { .. } => None,
            _ => None,
        }
    }

    /// Whether the serving layer may hope a later re-attempt of the whole
    /// query succeeds: true only for exhausted transient retries. Budget
    /// and deadline exhaustion are final for the query, and corruption
    /// re-reads the same damaged cell.
    pub fn is_reattemptable(&self) -> bool {
        matches!(self, DegradationReason::RetriesExhausted)
    }
}

impl fmt::Display for DegradationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationReason::RetriesExhausted => write!(f, "retries-exhausted"),
            DegradationReason::CorruptionDetected => write!(f, "corruption-detected"),
            DegradationReason::BudgetExhausted { spent, cap } => {
                write!(f, "budget-exhausted(spent={spent}, cap={cap})")
            }
            DegradationReason::DeadlineExceeded => write!(f, "deadline-exceeded"),
        }
    }
}

/// Which rung of the graceful-degradation ladder produced a response.
///
/// The ladder, from best to worst: the full `LCA-KP` sampled rule, a
/// cached rule reused across queries (one point query per answer, no
/// re-sampling — the "cached quantile" fast path), and the trivial
/// always-no rule (zero oracle accesses, consistent with ∅). A serving
/// layer records the tier on every response so availability numbers can
/// be decomposed by answer quality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[non_exhaustive]
pub enum ResponseTier {
    /// The full per-query `LCA-KP` rule construction (Theorem 4.1's
    /// `(1/2, 6ε)` guarantee applies).
    Full,
    /// A cached [`SolutionRule`](crate::SolutionRule) decided the answer
    /// with a single point query — still a feasible `(1/2, 6ε)` rule,
    /// but built from the cache stream rather than this query's own.
    CachedRule,
    /// The trivial always-no rule: feasible, consistent with ∅, no
    /// guarantee beyond that.
    Trivial,
}

impl ResponseTier {
    /// Whether the tier still carries the Theorem 4.1 approximation
    /// guarantee for the solution its answers are consistent with.
    pub fn has_theorem_guarantee(&self) -> bool {
        matches!(self, ResponseTier::Full | ResponseTier::CachedRule)
    }
}

impl fmt::Display for ResponseTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResponseTier::Full => write!(f, "full"),
            ResponseTier::CachedRule => write!(f, "cached-rule"),
            ResponseTier::Trivial => write!(f, "trivial"),
        }
    }
}

/// Per-query audit record produced by [`LcaKp::query_with_audit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryAudit {
    /// `Some(reason)` iff the query degraded to the trivial fallback.
    pub degraded: Option<DegradationReason>,
    /// Transient-fault retries spent during the query.
    pub retries_used: u64,
    /// Counted oracle accesses (queries + samples) the query consumed.
    pub budget_consumed: u64,
}

/// Aggregate of [`QueryAudit`]s over an assembled run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DegradationStats {
    /// Queries issued.
    pub queries: u64,
    /// Queries that fell back to the trivial rule.
    pub degraded_queries: u64,
    /// Degradations caused by exhausted retries.
    pub retries_exhausted: u64,
    /// Degradations caused by detected corruption.
    pub corruption_detected: u64,
    /// Degradations caused by an exhausted access budget.
    pub budget_exhausted: u64,
    /// Degradations caused by a missed deadline.
    pub deadline_exceeded: u64,
    /// Total transient-fault retries spent.
    pub retries_used: u64,
    /// Total counted oracle accesses consumed.
    pub budget_consumed: u64,
}

impl DegradationStats {
    /// Folds one per-query audit into the aggregate.
    pub fn absorb(&mut self, audit: &QueryAudit) {
        self.queries += 1;
        self.retries_used += audit.retries_used;
        self.budget_consumed += audit.budget_consumed;
        if let Some(reason) = audit.degraded {
            self.degraded_queries += 1;
            match reason {
                DegradationReason::RetriesExhausted => self.retries_exhausted += 1,
                DegradationReason::CorruptionDetected => self.corruption_detected += 1,
                DegradationReason::BudgetExhausted { .. } => self.budget_exhausted += 1,
                DegradationReason::DeadlineExceeded => self.deadline_exceeded += 1,
            }
        }
    }

    /// Fraction of queries that degraded (0.0 for an empty run).
    pub fn degradation_frequency(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.degraded_queries as f64 / self.queries as f64
        }
    }
}

impl fmt::Display for DegradationStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} degraded (retry={} corrupt={} budget={} deadline={}), {} retries, {} accesses",
            self.degraded_queries,
            self.queries,
            self.retries_exhausted,
            self.corruption_detected,
            self.budget_exhausted,
            self.deadline_exceeded,
            self.retries_used,
            self.budget_consumed
        )
    }
}

/// Assembles a solution by independent audited per-item queries against
/// an arbitrary (possibly fault-injecting or budgeted) oracle, keeping
/// the degradation trail.
///
/// Degraded queries contribute the trivial "no" answer — the selection
/// stays feasible whatever the fault pattern, it just loses value.
///
/// # Errors
///
/// Propagates hard errors (invalid ids, impossible sample budgets);
/// oracle faults degrade instead of erroring.
pub fn assemble_audited<O, R>(
    lca: &LcaKp,
    oracle: &O,
    rng: &mut R,
    seed: &Seed,
) -> Result<(Selection, DegradationStats), LcaError>
where
    O: ItemOracle + WeightedSampler,
    R: Rng + ?Sized,
{
    let mut stats = DegradationStats::default();
    let mut selection = Selection::new(oracle.len());
    for index in 0..oracle.len() {
        let (answer, audit) = lca.query_with_audit(oracle, rng, ItemId(index), seed)?;
        stats.absorb(&audit);
        if answer.include {
            selection.insert(ItemId(index));
        }
    }
    Ok((selection, stats))
}

/// An assembled solution measured against the exact optimum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApproxAudit {
    /// Value of the assembled solution (raw units).
    pub value: u64,
    /// Exact optimum (raw units).
    pub optimum: u64,
    /// Whether the assembled solution fits the capacity.
    pub feasible: bool,
    /// `value / optimum` (1.0 when the optimum is 0).
    pub ratio: f64,
    /// Normalized additive slack `(OPT/2 − value)/P`, clamped at 0 —
    /// the quantity Theorem 4.1 bounds by 6ε.
    pub half_slack: f64,
}

impl ApproxAudit {
    /// Whether the audit satisfies the `(1/2, 6ε)` bound of Theorem 4.1:
    /// `value ≥ OPT/2 − 6ε` in normalized units, and feasibility.
    pub fn satisfies_theorem(&self, eps: Epsilon) -> bool {
        self.feasible && self.half_slack <= 6.0 * eps.as_f64() + 1e-9
    }
}

impl fmt::Display for ApproxAudit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "value={} optimum={} feasible={} ratio={:.4} half_slack={:.4}",
            self.value, self.optimum, self.feasible, self.ratio, self.half_slack
        )
    }
}

/// Measures a selection against a known optimum.
pub fn audit_selection(
    norm: &NormalizedInstance,
    selection: &Selection,
    optimum: u64,
) -> ApproxAudit {
    let instance = norm.as_instance();
    let value = selection.value(instance);
    let feasible = selection.is_feasible(instance);
    let total = norm.total_profit() as f64;
    let half_slack = ((optimum as f64 / 2.0 - value as f64) / total).max(0.0);
    ApproxAudit {
        value,
        optimum,
        feasible,
        ratio: if optimum == 0 {
            1.0
        } else {
            value as f64 / optimum as f64
        },
        half_slack,
    }
}

/// Computes the exact optimum with the cheapest exact solver that
/// accepts the instance (weight DP, then profit DP, then branch and
/// bound).
///
/// # Errors
///
/// Propagates the last solver's error if every solver refuses.
pub fn exact_optimum(norm: &NormalizedInstance) -> Result<u64, LcaError> {
    let instance = norm.as_instance();
    if let Ok(outcome) = solvers::dp_by_weight(instance) {
        return Ok(outcome.value);
    }
    if let Ok(outcome) = solvers::dp_by_profit(instance) {
        return Ok(outcome.value);
    }
    Ok(solvers::branch_and_bound(instance)?.value)
}

/// Assembles a solution by independent per-item LCA queries (the honest
/// usage) and audits it against the exact optimum.
///
/// # Errors
///
/// Propagates query and solver errors.
pub fn assemble_and_audit<L, R>(
    lca: &L,
    norm: &NormalizedInstance,
    rng: &mut R,
    seed: &Seed,
) -> Result<ApproxAudit, LcaError>
where
    L: KnapsackLca,
    R: Rng + ?Sized,
{
    let oracle = InstanceOracle::new(norm);
    let selection = lca.assemble(&oracle, rng, seed)?;
    let optimum = exact_optimum(norm)?;
    Ok(audit_selection(norm, &selection, optimum))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trivial::{EmptyLca, FullScanLca};
    use lcakp_knapsack::Instance;

    fn fixture() -> NormalizedInstance {
        NormalizedInstance::new(Instance::from_pairs([(10, 5), (7, 3), (2, 2), (1, 1)], 6).unwrap())
            .unwrap()
    }

    #[test]
    fn audit_of_exact_solution_has_ratio_one() {
        let norm = fixture();
        let outcome = solvers::dp_by_weight(norm.as_instance()).unwrap();
        let audit = audit_selection(&norm, &outcome.selection, outcome.value);
        assert_eq!(audit.ratio, 1.0);
        assert!(audit.feasible);
        assert_eq!(audit.half_slack, 0.0);
    }

    #[test]
    fn empty_lca_fails_the_theorem_bound_at_small_eps() {
        let norm = fixture();
        let mut rng = Seed::from_entropy_u64(1).rng();
        let audit = assemble_and_audit(
            &EmptyLca::new(),
            &norm,
            &mut rng,
            &Seed::from_entropy_u64(2),
        )
        .unwrap();
        assert_eq!(audit.value, 0);
        // OPT = 11; half-slack = 5.5/20 = 0.275 > 6ε at ε = 1/100.
        let eps = Epsilon::new(1, 100).unwrap();
        assert!(!audit.satisfies_theorem(eps));
    }

    #[test]
    fn full_scan_satisfies_half_approximation() {
        let norm = fixture();
        let mut rng = Seed::from_entropy_u64(1).rng();
        let audit = assemble_and_audit(
            &FullScanLca::new(),
            &norm,
            &mut rng,
            &Seed::from_entropy_u64(2),
        )
        .unwrap();
        assert!(audit.feasible);
        assert!(audit.ratio >= 0.5);
        assert!(audit.satisfies_theorem(Epsilon::new(1, 100).unwrap()));
    }

    #[test]
    fn exact_optimum_falls_back_across_solvers() {
        let norm = fixture();
        // OPT = item 0 (10) + item 3 (1) at weight 6.
        assert_eq!(exact_optimum(&norm).unwrap(), 11);
    }

    #[test]
    fn zero_optimum_ratio_is_one() {
        let norm =
            NormalizedInstance::new(Instance::from_pairs([(1, 10), (1, 10)], 5).unwrap()).unwrap();
        let selection = Selection::new(2);
        let audit = audit_selection(&norm, &selection, 0);
        assert_eq!(audit.ratio, 1.0);
    }
}
