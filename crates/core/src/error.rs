use lcakp_knapsack::KnapsackError;
use lcakp_oracle::OracleError;
use lcakp_reproducible::ReproducibleError;
use std::error::Error;
use std::fmt;

/// Errors from LCA queries.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LcaError {
    /// An underlying Knapsack-substrate error.
    Knapsack(KnapsackError),
    /// A reproducible-statistics error.
    Reproducible(ReproducibleError),
    /// The configured sample budget requires more samples per query than
    /// the safety cap allows; relax ε, the budget factor, or the cap.
    SampleBudgetTooLarge {
        /// Samples the configuration asked for.
        needed: u64,
        /// The configured cap.
        cap: u64,
    },
    /// The queried item id is outside the instance.
    ItemOutOfRange {
        /// Queried index.
        index: usize,
        /// Instance size.
        len: usize,
    },
    /// An oracle access failed (after any configured retries). Queries
    /// that degrade gracefully never surface this; it escapes only from
    /// the non-degrading paths such as [`crate::LcaKp::build_rule`].
    Oracle(OracleError),
}

impl fmt::Display for LcaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LcaError::Knapsack(err) => write!(f, "knapsack error: {err}"),
            LcaError::Reproducible(err) => write!(f, "reproducible-statistics error: {err}"),
            LcaError::SampleBudgetTooLarge { needed, cap } => write!(
                f,
                "query needs {needed} samples, above the safety cap {cap}"
            ),
            LcaError::ItemOutOfRange { index, len } => {
                write!(f, "queried item {index} outside instance of {len} items")
            }
            LcaError::Oracle(err) => write!(f, "oracle access failed: {err}"),
        }
    }
}

impl Error for LcaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LcaError::Knapsack(err) => Some(err),
            LcaError::Reproducible(err) => Some(err),
            LcaError::Oracle(err) => Some(err),
            LcaError::SampleBudgetTooLarge { .. } | LcaError::ItemOutOfRange { .. } => None,
        }
    }
}

impl From<OracleError> for LcaError {
    fn from(err: OracleError) -> Self {
        LcaError::Oracle(err)
    }
}

impl From<KnapsackError> for LcaError {
    fn from(err: KnapsackError) -> Self {
        LcaError::Knapsack(err)
    }
}

impl From<ReproducibleError> for LcaError {
    fn from(err: ReproducibleError) -> Self {
        LcaError::Reproducible(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let err = LcaError::from(KnapsackError::EmptyInstance);
        assert!(err.to_string().contains("knapsack"));
        assert!(err.source().is_some());
        let err = LcaError::SampleBudgetTooLarge { needed: 10, cap: 5 };
        assert!(err.source().is_none());
        assert!(err.to_string().contains("10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LcaError>();
    }
}
