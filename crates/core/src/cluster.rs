//! A simulated distributed serving fleet — the deployment story of the
//! paper's introduction made concrete.
//!
//! "This paradigm of computation in particular allows for hugely
//! distributed algorithms, where independent instances of a given LCA
//! provide consistent access to a common output solution." This module
//! simulates exactly that: a pool of worker threads, each holding only
//! the shared seed and (counted) oracle access, draining a common query
//! queue with no inter-worker communication. The output records which
//! worker answered what, so tests and experiments can verify that the
//! union of answers behaves like one solution regardless of how queries
//! were scheduled.

use crate::lca::{KnapsackLca, LcaAnswer};
use crate::LcaError;
use crossbeam::channel;
use lcakp_knapsack::{ItemId, Selection};
use lcakp_oracle::{ItemOracle, Seed, WeightedSampler};
use std::fmt;

/// Configuration of a simulated cluster run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Bounded depth of the shared query queue (backpressure).
    pub queue_depth: usize,
    /// Root for deriving each worker's private sampling-entropy stream.
    pub entropy_root: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            workers: 4,
            queue_depth: 64,
            entropy_root: 0x5eed_c105,
        }
    }
}

/// One answered query, with provenance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutedAnswer {
    /// The queried item.
    pub item: ItemId,
    /// The answer.
    pub answer: LcaAnswer,
    /// Which worker served it.
    pub worker: usize,
}

/// The outcome of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterRun {
    /// All answers, in completion order.
    pub answers: Vec<RoutedAnswer>,
    /// Queries served per worker.
    pub worker_loads: Vec<usize>,
}

impl ClusterRun {
    /// Collapses the answers into a selection over `n` items (later
    /// duplicates of the same item overwrite earlier ones; with a
    /// consistent LCA they agree anyway).
    pub fn to_selection(&self, n: usize) -> Selection {
        let mut selection = Selection::new(n);
        for routed in &self.answers {
            if routed.answer.include {
                selection.insert(routed.item);
            } else {
                selection.remove(routed.item);
            }
        }
        selection
    }

    /// For items that were queried more than once (possibly by different
    /// workers): the fraction of items whose answers all agree.
    pub fn duplicate_agreement(&self) -> f64 {
        use std::collections::BTreeMap;
        let mut by_item: BTreeMap<ItemId, Vec<bool>> = BTreeMap::new();
        for routed in &self.answers {
            by_item
                .entry(routed.item)
                .or_default()
                .push(routed.answer.include);
        }
        let duplicated: Vec<&Vec<bool>> = by_item
            .values()
            .filter(|answers| answers.len() > 1)
            .collect();
        if duplicated.is_empty() {
            return 1.0;
        }
        let agreeing = duplicated
            .iter()
            .filter(|answers| answers.iter().all(|&x| x == answers[0]))
            .count();
        agreeing as f64 / duplicated.len() as f64
    }
}

impl fmt::Display for ClusterRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ClusterRun(answers={}, loads={:?}, dup_agreement={:.3})",
            self.answers.len(),
            self.worker_loads,
            self.duplicate_agreement()
        )
    }
}

/// Serves `queries` through a pool of `config.workers` independent LCA
/// instances sharing `seed` and `oracle`. Workers race on a bounded
/// queue; scheduling is nondeterministic, which is the point — the
/// answers must not care.
///
/// # Errors
///
/// Returns the first [`LcaError`] any worker hit (after all workers have
/// stopped).
pub fn serve_queries<L, O>(
    lca: &L,
    oracle: &O,
    seed: &Seed,
    queries: &[ItemId],
    config: ClusterConfig,
) -> Result<ClusterRun, LcaError>
where
    L: KnapsackLca + Sync,
    O: ItemOracle + WeightedSampler + Sync,
{
    assert!(config.workers > 0, "need at least one worker");
    let (work_tx, work_rx) = channel::bounded::<ItemId>(config.queue_depth.max(1));
    let (done_tx, done_rx) = channel::unbounded::<Result<RoutedAnswer, LcaError>>();

    std::thread::scope(|scope| {
        for worker in 0..config.workers {
            let work_rx = work_rx.clone();
            let done_tx = done_tx.clone();
            scope.spawn(move || {
                let mut rng = Seed::from_entropy_u64(
                    config.entropy_root ^ (worker as u64).wrapping_mul(0x9e37_79b9),
                )
                .rng();
                for item in work_rx.iter() {
                    let result =
                        lca.query(oracle, &mut rng, item, seed)
                            .map(|answer| RoutedAnswer {
                                item,
                                answer,
                                worker,
                            });
                    if done_tx.send(result).is_err() {
                        break;
                    }
                }
            });
        }
        drop(done_tx);
        for &item in queries {
            work_tx.send(item).expect("workers alive while feeding");
        }
        drop(work_tx);

        let mut answers = Vec::with_capacity(queries.len());
        let mut worker_loads = vec![0usize; config.workers];
        let mut first_error = None;
        for result in done_rx.iter() {
            match result {
                Ok(routed) => {
                    worker_loads[routed.worker] += 1;
                    answers.push(routed);
                }
                Err(err) => {
                    if first_error.is_none() {
                        first_error = Some(err);
                    }
                }
            }
        }
        match first_error {
            Some(err) => Err(err),
            None => Ok(ClusterRun {
                answers,
                worker_loads,
            }),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trivial::FullScanLca;
    use crate::LcaKp;
    use lcakp_knapsack::iky::Epsilon;
    use lcakp_oracle::InstanceOracle;
    use lcakp_reproducible::SampleBudget;
    use lcakp_workloads::{Family, WorkloadSpec};

    #[test]
    fn deterministic_lca_cluster_matches_sequential() {
        let norm = WorkloadSpec::new(Family::SubsetSum { range: 50 }, 60, 1)
            .generate_normalized()
            .unwrap();
        let oracle = InstanceOracle::new(&norm);
        let lca = FullScanLca::new();
        let seed = Seed::from_entropy_u64(2);
        let queries: Vec<ItemId> = (0..60).map(ItemId).collect();
        let run = serve_queries(&lca, &oracle, &seed, &queries, ClusterConfig::default()).unwrap();
        assert_eq!(run.answers.len(), 60);

        let mut rng = Seed::from_entropy_u64(3).rng();
        let sequential = lca.assemble(&oracle, &mut rng, &seed).unwrap();
        assert_eq!(run.to_selection(60), sequential);
        assert_eq!(run.worker_loads.iter().sum::<usize>(), 60);
    }

    #[test]
    fn duplicated_queries_agree_for_deterministic_lca() {
        let norm = WorkloadSpec::new(Family::SubsetSum { range: 50 }, 30, 4)
            .generate_normalized()
            .unwrap();
        let oracle = InstanceOracle::new(&norm);
        let lca = FullScanLca::new();
        let seed = Seed::from_entropy_u64(5);
        // Every item queried three times, interleaved.
        let queries: Vec<ItemId> = (0..90).map(|index| ItemId(index % 30)).collect();
        let run = serve_queries(&lca, &oracle, &seed, &queries, ClusterConfig::default()).unwrap();
        assert_eq!(run.duplicate_agreement(), 1.0, "{run}");
    }

    #[test]
    fn lca_kp_cluster_union_is_feasible() {
        let norm = WorkloadSpec::new(Family::SmallDominated, 90, 6)
            .generate_normalized()
            .unwrap();
        let oracle = InstanceOracle::new(&norm);
        let eps = Epsilon::new(1, 3).unwrap();
        let lca = LcaKp::new(eps)
            .unwrap()
            .with_budget(SampleBudget::Calibrated { factor: 0.02 });
        let seed = Seed::from_entropy_u64(7);
        let queries: Vec<ItemId> = (0..90).map(ItemId).collect();
        let run = serve_queries(
            &lca,
            &oracle,
            &seed,
            &queries,
            ClusterConfig {
                workers: 6,
                queue_depth: 8,
                entropy_root: 99,
            },
        )
        .unwrap();
        let selection = run.to_selection(90);
        assert!(
            selection.is_feasible(norm.as_instance()),
            "cluster union infeasible: {run}"
        );
        // Every worker that exists got counted; loads sum to the queries.
        assert_eq!(run.worker_loads.len(), 6);
        assert_eq!(run.worker_loads.iter().sum::<usize>(), 90);
    }

    #[test]
    fn single_worker_degenerates_to_sequential_order() {
        let norm = WorkloadSpec::new(Family::SubsetSum { range: 20 }, 10, 8)
            .generate_normalized()
            .unwrap();
        let oracle = InstanceOracle::new(&norm);
        let lca = FullScanLca::new();
        let seed = Seed::from_entropy_u64(9);
        let queries: Vec<ItemId> = (0..10).map(ItemId).collect();
        let run = serve_queries(
            &lca,
            &oracle,
            &seed,
            &queries,
            ClusterConfig {
                workers: 1,
                queue_depth: 2,
                entropy_root: 1,
            },
        )
        .unwrap();
        let served: Vec<ItemId> = run.answers.iter().map(|routed| routed.item).collect();
        assert_eq!(served, queries);
    }
}
