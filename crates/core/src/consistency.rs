//! Consistency auditing — Definitions 2.3 (parallelizable) and 2.4
//! (query-order oblivious) as *measurements*.
//!
//! An LCA's promise is that independent runs with the same seed answer
//! according to one common solution. This module measures how often that
//! holds: it runs an LCA many times with fresh sampling entropy (and once
//! across threads), compares the answer vectors, and reports agreement
//! rates — the quantity Lemma 4.9 bounds below by `1 − ε` for `LCA-KP`
//! and experiment E6 tabulates.

use crate::lca::KnapsackLca;
use crate::LcaError;
use lcakp_knapsack::{ItemId, Selection};
use lcakp_oracle::{ItemOracle, Seed, WeightedSampler};
use std::collections::BTreeMap;
use std::fmt;

/// Result of a consistency audit.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsistencyReport {
    /// Number of independent runs compared.
    pub runs: usize,
    /// Items queried per run.
    pub queries: usize,
    /// Fraction of run pairs whose full answer vectors agree.
    pub pairwise_agreement: f64,
    /// Fraction of runs matching the most common answer vector.
    pub mode_agreement: f64,
    /// Per-item agreement rate, averaged over items.
    pub mean_item_agreement: f64,
    /// Number of distinct answer vectors observed.
    pub distinct_solutions: usize,
}

impl ConsistencyReport {
    /// Whether the audit meets a `1 − ε` mode-agreement target.
    pub fn meets(&self, one_minus_eps: f64) -> bool {
        self.mode_agreement >= one_minus_eps
    }
}

impl fmt::Display for ConsistencyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "runs={} queries={} pairwise={:.3} mode={:.3} item={:.4} distinct={}",
            self.runs,
            self.queries,
            self.pairwise_agreement,
            self.mode_agreement,
            self.mean_item_agreement,
            self.distinct_solutions
        )
    }
}

fn summarize(vectors: Vec<Vec<bool>>, queries: usize) -> ConsistencyReport {
    let runs = vectors.len();
    let mut pair_total = 0u64;
    let mut pair_agree = 0u64;
    for a in 0..runs {
        for b in a + 1..runs {
            pair_total += 1;
            if vectors[a] == vectors[b] {
                pair_agree += 1;
            }
        }
    }
    let mut counts: BTreeMap<&Vec<bool>, usize> = BTreeMap::new();
    for vector in &vectors {
        *counts.entry(vector).or_insert(0) += 1;
    }
    let mode = counts.values().copied().max().unwrap_or(0);
    let distinct_solutions = counts.len();

    let mut item_agreement_sum = 0.0;
    for item in 0..queries {
        let yes = vectors.iter().filter(|vector| vector[item]).count();
        let majority = yes.max(runs - yes);
        item_agreement_sum += majority as f64 / runs.max(1) as f64;
    }

    ConsistencyReport {
        runs,
        queries,
        pairwise_agreement: if pair_total == 0 {
            1.0
        } else {
            pair_agree as f64 / pair_total as f64
        },
        mode_agreement: mode as f64 / runs.max(1) as f64,
        mean_item_agreement: if queries == 0 {
            1.0
        } else {
            item_agreement_sum / queries as f64
        },
        distinct_solutions,
    }
}

/// Runs `lca` `runs` times over `items` with fresh per-run sampling
/// entropy (derived deterministically from `entropy_root`) and a common
/// shared `seed`, then summarizes agreement.
///
/// # Errors
///
/// Propagates the first query error.
pub fn audit_consistency<L, O>(
    lca: &L,
    oracle: &O,
    items: &[ItemId],
    seed: &Seed,
    runs: usize,
    entropy_root: u64,
) -> Result<ConsistencyReport, LcaError>
where
    L: KnapsackLca,
    O: ItemOracle + WeightedSampler,
{
    let mut vectors = Vec::with_capacity(runs);
    for run in 0..runs {
        let mut rng =
            Seed::from_entropy_u64(entropy_root ^ (run as u64).wrapping_mul(0x9e37)).rng();
        let mut answers = Vec::with_capacity(items.len());
        for &item in items {
            answers.push(lca.query(oracle, &mut rng, item, seed)?.include);
        }
        vectors.push(answers);
    }
    Ok(summarize(vectors, items.len()))
}

/// The parallel variant of the audit (Definition 2.3): each run executes
/// on its own thread against the *shared* oracle, exercising the
/// distributed deployment the paper motivates. Requires the LCA and
/// oracle to be `Sync`.
///
/// # Errors
///
/// Propagates the first query error (after all threads complete).
pub fn audit_consistency_parallel<L, O>(
    lca: &L,
    oracle: &O,
    items: &[ItemId],
    seed: &Seed,
    runs: usize,
    entropy_root: u64,
) -> Result<ConsistencyReport, LcaError>
where
    L: KnapsackLca + Sync,
    O: ItemOracle + WeightedSampler + Sync,
{
    let results: Vec<Result<Vec<bool>, LcaError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..runs)
            .map(|run| {
                scope.spawn(move || {
                    let mut rng =
                        Seed::from_entropy_u64(entropy_root ^ (run as u64).wrapping_mul(0x9e37))
                            .rng();
                    let mut answers = Vec::with_capacity(items.len());
                    for &item in items {
                        answers.push(lca.query(oracle, &mut rng, item, seed)?.include);
                    }
                    Ok(answers)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|handle| handle.join().expect("audit thread panicked"))
            .collect()
    });
    let mut vectors = Vec::with_capacity(runs);
    for result in results {
        vectors.push(result?);
    }
    Ok(summarize(vectors, items.len()))
}

/// Checks query-order obliviousness (Definition 2.4): answers the same
/// items in forward and reverse order under identical randomness and
/// verifies the assembled selections coincide.
///
/// # Errors
///
/// Propagates the first query error.
pub fn check_order_obliviousness<L, O>(
    lca: &L,
    oracle: &O,
    seed: &Seed,
    entropy_root: u64,
) -> Result<bool, LcaError>
where
    L: KnapsackLca,
    O: ItemOracle + WeightedSampler,
{
    let n = oracle.len();
    let forward: Vec<ItemId> = (0..n).map(ItemId).collect();
    let reverse: Vec<ItemId> = (0..n).rev().map(ItemId).collect();

    let run = |order: &[ItemId]| -> Result<Selection, LcaError> {
        let mut selection = Selection::new(n);
        for (position, &item) in order.iter().enumerate() {
            // Per-query entropy depends on the *item*, not the position:
            // the same item gets the same fresh sample stream in both
            // orders, isolating order effects from sampling noise.
            let mut rng = Seed::from_entropy_u64(entropy_root ^ item.index() as u64).rng();
            let _ = position;
            if lca.query(oracle, &mut rng, item, seed)?.include {
                selection.insert(item);
            }
        }
        Ok(selection)
    };

    Ok(run(&forward)? == run(&reverse)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trivial::{EmptyLca, FullScanLca};
    use lcakp_knapsack::{Instance, NormalizedInstance};
    use lcakp_oracle::InstanceOracle;

    fn fixture() -> NormalizedInstance {
        NormalizedInstance::new(
            Instance::from_pairs((1..=40u64).map(|i| (1 + i % 7, 1 + i % 5)), 30).unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn empty_lca_is_perfectly_consistent() {
        let norm = fixture();
        let oracle = InstanceOracle::new(&norm);
        let items: Vec<ItemId> = (0..norm.len()).map(ItemId).collect();
        let report = audit_consistency(
            &EmptyLca::new(),
            &oracle,
            &items,
            &Seed::from_entropy_u64(0),
            8,
            1,
        )
        .unwrap();
        assert_eq!(report.pairwise_agreement, 1.0);
        assert_eq!(report.mode_agreement, 1.0);
        assert_eq!(report.distinct_solutions, 1);
        assert!(report.meets(0.99));
    }

    #[test]
    fn full_scan_is_perfectly_consistent_in_parallel() {
        let norm = fixture();
        let oracle = InstanceOracle::new(&norm);
        let items: Vec<ItemId> = (0..norm.len()).map(ItemId).collect();
        let report = audit_consistency_parallel(
            &FullScanLca::new(),
            &oracle,
            &items,
            &Seed::from_entropy_u64(0),
            6,
            2,
        )
        .unwrap();
        assert_eq!(report.pairwise_agreement, 1.0);
        assert_eq!(report.distinct_solutions, 1);
    }

    #[test]
    fn order_obliviousness_of_deterministic_lcas() {
        let norm = fixture();
        let oracle = InstanceOracle::new(&norm);
        assert!(check_order_obliviousness(
            &FullScanLca::new(),
            &oracle,
            &Seed::from_entropy_u64(3),
            4,
        )
        .unwrap());
    }

    #[test]
    fn summarize_detects_disagreement() {
        let vectors = vec![
            vec![true, false],
            vec![true, false],
            vec![true, true],
            vec![false, false],
        ];
        let report = summarize(vectors, 2);
        assert_eq!(report.distinct_solutions, 3);
        assert!((report.mode_agreement - 0.5).abs() < 1e-12);
        // Pairs: 6 total, only (0,1) agree.
        assert!((report.pairwise_agreement - 1.0 / 6.0).abs() < 1e-12);
        // Item 0: 3/4 majority; item 1: 3/4 majority.
        assert!((report.mean_item_agreement - 0.75).abs() < 1e-12);
    }

    #[test]
    fn report_display() {
        let vectors = vec![vec![true], vec![true]];
        let report = summarize(vectors, 1);
        assert!(report.to_string().contains("mode=1.000"));
    }
}
