//! Baseline LCAs bracketing `LCA-KP`.
//!
//! * [`EmptyLca`] — the trivially consistent LCA the paper mentions after
//!   Definition 2.4: always answer **no**, consistent with the feasible
//!   solution ∅ at zero queries. Any useful LCA must beat its value.
//! * [`FullScanLca`] — the other extreme: read the *entire* instance on
//!   every query (n point queries), solve it deterministically with the
//!   modified greedy 1/2-approximation, answer membership. Perfectly
//!   consistent, trivially correct, and exactly the Ω(n) behavior the
//!   lower bounds say is unavoidable without weighted sampling.

use crate::lca::{DecisionReason, KnapsackLca, LcaAnswer};
use crate::LcaError;
use lcakp_knapsack::solvers::modified_greedy;
use lcakp_knapsack::{Instance, ItemId};
use lcakp_oracle::{ItemOracle, Seed, WeightedSampler};
use rand::Rng;

/// The answer the fault-degradation ladder falls back to: the same
/// always-no rule as [`EmptyLca`] (consistent with the feasible solution
/// ∅), tagged [`DecisionReason::DegradedFallback`] so audits can tell
/// degraded answers from deliberate baseline use.
pub fn degraded_answer() -> LcaAnswer {
    LcaAnswer {
        include: false,
        reason: DecisionReason::DegradedFallback,
    }
}

/// Always answers **no** — consistent with the empty solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EmptyLca;

impl EmptyLca {
    /// Creates the trivial LCA.
    pub fn new() -> Self {
        EmptyLca
    }
}

impl KnapsackLca for EmptyLca {
    fn query<O, R>(
        &self,
        oracle: &O,
        _rng: &mut R,
        item: ItemId,
        _seed: &Seed,
    ) -> Result<LcaAnswer, LcaError>
    where
        O: ItemOracle + WeightedSampler,
        R: Rng + ?Sized,
    {
        if item.index() >= oracle.len() {
            return Err(LcaError::ItemOutOfRange {
                index: item.index(),
                len: oracle.len(),
            });
        }
        Ok(LcaAnswer {
            include: false,
            reason: DecisionReason::TrivialEmpty,
        })
    }
}

/// Reads the whole instance per query and answers from a deterministic
/// 1/2-approximate solve — the Ω(n)-query baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FullScanLca;

impl FullScanLca {
    /// Creates the full-scan baseline.
    pub fn new() -> Self {
        FullScanLca
    }
}

impl KnapsackLca for FullScanLca {
    fn query<O, R>(
        &self,
        oracle: &O,
        _rng: &mut R,
        item: ItemId,
        _seed: &Seed,
    ) -> Result<LcaAnswer, LcaError>
    where
        O: ItemOracle + WeightedSampler,
        R: Rng + ?Sized,
    {
        if item.index() >= oracle.len() {
            return Err(LcaError::ItemOutOfRange {
                index: item.index(),
                len: oracle.len(),
            });
        }
        // Pay n point queries to reconstruct the instance; any oracle
        // fault surfaces as a typed error instead of a panic.
        let items: Vec<lcakp_knapsack::Item> = (0..oracle.len())
            .map(|index| oracle.try_query(ItemId(index)))
            .collect::<Result<_, _>>()?;
        let instance = Instance::new(items, oracle.capacity())?;
        let outcome = modified_greedy(&instance);
        Ok(LcaAnswer {
            include: outcome.selection.contains(item),
            reason: DecisionReason::FullScan,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcakp_knapsack::{Instance, NormalizedInstance};
    use lcakp_oracle::InstanceOracle;

    fn oracle_fixture() -> NormalizedInstance {
        NormalizedInstance::new(Instance::from_pairs([(10, 5), (7, 3), (2, 2)], 5).unwrap())
            .unwrap()
    }

    #[test]
    fn empty_lca_always_no_and_free() {
        let norm = oracle_fixture();
        let oracle = InstanceOracle::new(&norm);
        let lca = EmptyLca::new();
        let seed = Seed::from_entropy_u64(0);
        let mut rng = Seed::from_entropy_u64(1).rng();
        for index in 0..3 {
            let answer = lca.query(&oracle, &mut rng, ItemId(index), &seed).unwrap();
            assert!(!answer.include);
        }
        assert_eq!(oracle.stats().total(), 0, "EmptyLca must not query");
    }

    #[test]
    fn full_scan_pays_n_queries_and_is_consistent() {
        let norm = oracle_fixture();
        let oracle = InstanceOracle::new(&norm);
        let lca = FullScanLca::new();
        let seed = Seed::from_entropy_u64(0);
        let mut rng = Seed::from_entropy_u64(1).rng();
        let first = lca.query(&oracle, &mut rng, ItemId(0), &seed).unwrap();
        assert_eq!(oracle.stats().point_queries, 3);
        let again = lca.query(&oracle, &mut rng, ItemId(0), &seed).unwrap();
        assert_eq!(first, again);
        assert_eq!(oracle.stats().point_queries, 6);
    }

    #[test]
    fn full_scan_solution_is_half_approximate() {
        let norm = oracle_fixture();
        let oracle = InstanceOracle::new(&norm);
        let lca = FullScanLca::new();
        let seed = Seed::from_entropy_u64(0);
        let mut rng = Seed::from_entropy_u64(1).rng();
        let selection = lca.assemble(&oracle, &mut rng, &seed).unwrap();
        let value = selection.value(norm.as_instance());
        let optimum = lcakp_knapsack::solvers::dp_by_weight(norm.as_instance())
            .unwrap()
            .value;
        assert!(2 * value >= optimum);
        assert!(selection.is_feasible(norm.as_instance()));
    }

    #[test]
    fn out_of_range_errors() {
        let norm = oracle_fixture();
        let oracle = InstanceOracle::new(&norm);
        let seed = Seed::from_entropy_u64(0);
        let mut rng = Seed::from_entropy_u64(1).rng();
        assert!(EmptyLca::new()
            .query(&oracle, &mut rng, ItemId(9), &seed)
            .is_err());
        assert!(FullScanLca::new()
            .query(&oracle, &mut rng, ItemId(9), &seed)
            .is_err());
    }
}
