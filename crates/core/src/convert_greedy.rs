//! `CONVERT-GREEDY` — Algorithm 3 of the paper.
//!
//! Runs the modified-greedy 1/2-approximation over the reduced instance Ĩ
//! and *converts* its outcome into threshold form: instead of a set of Ĩ
//! items, it emits (a) the original ids of the selected large items,
//! (b) an efficiency cut-off `e_small = ẽ_{k−2}` under which small items
//! of the original instance are excluded, and (c) the `B_indicator` flag
//! for the singleton branch. This is exactly the information an LCA can
//! apply to a *single queried item* without seeing the rest of the
//! instance.

use lcakp_knapsack::iky::{EpsSequence, TildeInstance, TildeOrigin};
use lcakp_knapsack::ItemId;
use std::fmt;

/// Output of Algorithm 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvertGreedyOutput {
    /// `Index_large`: original ids of the large items in the solution.
    pub large_selected: Vec<ItemId>,
    /// `e_small`: efficiency-key threshold for small items (`None` is the
    /// paper's `−1`).
    pub e_small: Option<u64>,
    /// `B_indicator`: `true` iff the singleton branch won.
    pub singleton: bool,
}

impl fmt::Display for ConvertGreedyOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ConvertGreedy(large={:?}, e_small={:?}, singleton={})",
            self.large_selected, self.e_small, self.singleton
        )
    }
}

/// Runs `CONVERT-GREEDY` on Ĩ (Algorithm 3).
///
/// * Line 1–2: sort Ĩ canonically by efficiency; find the largest prefix
///   `j` whose weight fits the capacity.
/// * Line 3: find the largest `k` with `ẽ_k >` the efficiency of the last
///   prefix item.
/// * Lines 4–10 (prefix branch, `Σ_{i≤j} p_i ≥ p_{j+1}` or `j = |S̃|`):
///   emit the large prefix items and `e_small = ẽ_{k−2}` when `k ≥ 3`.
/// * Lines 11–13 (singleton branch): the cut-off item alone beats the
///   prefix; emit it as the sole member. The paper's Lemma 4.7 argues the
///   winner is always a large item; if a degenerate EPS ever makes a
///   synthetic representative win, this implementation returns the empty
///   rule (the representative's profit is ≤ ε², so at most ε² of value is
///   forfeited) — a corner recorded in `DESIGN.md`.
///
/// Everything is deterministic in `(Ĩ, EPS)`: identical inputs give
/// identical outputs, which is the consistency backbone of Lemma 4.9.
pub fn convert_greedy(tilde: &TildeInstance, seq: &EpsSequence) -> ConvertGreedyOutput {
    let items = tilde.items();
    let capacity = tilde.capacity_mu() as u128;
    // Definition 2.2 assumes every weight is at most K; for general
    // instances, items that do not fit on their own can never be chosen,
    // so they are excluded from the greedy order up front (exactly as
    // `modified_greedy` does on raw instances).
    let order: Vec<usize> = tilde
        .greedy_order()
        .into_iter()
        .filter(|&index| items[index].weight_mu as u128 <= capacity)
        // lcakp-lint: allow(D011) reason="the greedy order covers the tilde instance, which has O(1/ε³) items - ε-bounded per query, independent of n"
        .collect();

    // Greedy prefix (line 2).
    let mut weight: u128 = 0;
    let mut profit: u128 = 0;
    let mut prefix_len = 0usize;
    for &index in &order {
        let item = items[index];
        if weight + item.weight_mu as u128 <= capacity {
            weight += item.weight_mu as u128;
            profit += item.profit_mu as u128;
            prefix_len += 1;
        } else {
            break;
        }
    }

    let cutoff = order.get(prefix_len).map(|&index| items[index]);

    // Prefix branch condition (line 4): j = |S̃| or Σ p_i ≥ p_{j+1}.
    let prefix_wins = match cutoff {
        None => true,
        Some(item) => profit >= item.profit_mu as u128,
    };

    if prefix_wins {
        let large_selected: Vec<ItemId> = order[..prefix_len]
            .iter()
            .filter_map(|&index| match items[index].origin {
                TildeOrigin::Large(id) => Some(id),
                TildeOrigin::SmallRep { .. } => None,
            })
            // lcakp-lint: allow(D011) reason="the selected set is the rule's output and a subset of the O(1/ε³)-item tilde instance"
            .collect();
        let mut large_selected = large_selected;
        large_selected.sort();

        // Line 3: k = largest index with ẽ_k > p_j/w_j, where (p_j, w_j)
        // is the last prefix item. With an empty prefix there is no such
        // item and no cut-off.
        let e_small = if prefix_len == 0 {
            None
        } else {
            let last = items[order[prefix_len - 1]];
            // Count thresholds strictly above the last item's efficiency:
            // ẽ/2³² > p/w ⇔ ẽ·w > p·2³². Thresholds are non-increasing,
            // so this is a prefix count — the paper's k.
            let k = seq
                .keys()
                .iter()
                .take_while(|&&key| {
                    key as u128 * last.weight_mu as u128 > (last.profit_mu as u128) << 32
                })
                .count();
            if k >= 3 {
                Some(seq.threshold(k - 2))
            } else {
                None
            }
        };
        ConvertGreedyOutput {
            large_selected,
            e_small,
            singleton: false,
        }
    } else {
        // Singleton branch (lines 11–13).
        let winner = cutoff.expect("cutoff exists when the prefix loses");
        match winner.origin {
            TildeOrigin::Large(id) => ConvertGreedyOutput {
                // lcakp-lint: allow(D011) reason="a one-element output vector for the singleton branch"
                large_selected: vec![id],
                e_small: None,
                singleton: true,
            },
            TildeOrigin::SmallRep { .. } => ConvertGreedyOutput {
                // lcakp-lint: allow(D011) reason="an empty output vector; Vec::new never allocates until pushed"
                large_selected: Vec::new(),
                e_small: None,
                singleton: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcakp_knapsack::iky::{exact_eps, Epsilon, Partition};
    use lcakp_knapsack::{Instance, NormalizedInstance};

    fn build(
        pairs: Vec<(u64, u64)>,
        capacity: u64,
        eps: Epsilon,
    ) -> (NormalizedInstance, TildeInstance, EpsSequence) {
        let norm = NormalizedInstance::new(Instance::from_pairs(pairs, capacity).unwrap()).unwrap();
        let partition = Partition::compute(&norm, eps);
        let seq = exact_eps(&norm, eps, &partition);
        let tilde = TildeInstance::build_from_instance(&norm, eps, partition.large(), &seq);
        (norm, tilde, seq)
    }

    #[test]
    fn prefix_branch_selects_efficient_large_items() {
        let eps = Epsilon::new(1, 2).unwrap();
        // Two large items; the efficient one fits, the other does not.
        let (_, tilde, seq) = build(vec![(60, 2), (40, 100)], 4, eps);
        let out = convert_greedy(&tilde, &seq);
        assert!(!out.singleton);
        assert_eq!(out.large_selected, vec![ItemId(0)]);
    }

    #[test]
    fn whole_instance_fits() {
        let eps = Epsilon::new(1, 2).unwrap();
        let (_, tilde, seq) = build(vec![(60, 2), (40, 3)], 100, eps);
        let out = convert_greedy(&tilde, &seq);
        assert!(!out.singleton);
        assert_eq!(out.large_selected, vec![ItemId(0), ItemId(1)]);
    }

    #[test]
    fn singleton_branch_triggers_on_trap() {
        // Three large fillers (100, 1) → efficiency 100; the trap
        // (400, 6) → efficiency ~67 but profit above the whole prefix.
        // Capacity = trap weight: the prefix holds the fillers, cannot
        // add the trap, and loses on profit. At ε = 1/3, every item is
        // large (ε² = 1/9, smallest p̂ = 100/700 ≈ 0.14).
        let eps = Epsilon::new(1, 3).unwrap();
        let pairs: Vec<(u64, u64)> = vec![(100, 1), (100, 1), (100, 1), (400, 6)];
        let (_, tilde, seq) = build(pairs, 6, eps);
        let out = convert_greedy(&tilde, &seq);
        assert!(out.singleton, "{out}");
        assert_eq!(out.large_selected, vec![ItemId(3)]);
        assert_eq!(out.e_small, None);
    }

    #[test]
    fn deterministic_on_identical_inputs() {
        let eps = Epsilon::new(1, 3).unwrap();
        let pairs: Vec<(u64, u64)> = (1..=60u64).map(|index| (1 + index % 9, index)).collect();
        let (_, tilde, seq) = build(pairs, 300, eps);
        let a = convert_greedy(&tilde, &seq);
        let b = convert_greedy(&tilde, &seq);
        assert_eq!(a, b);
    }

    #[test]
    fn small_cutoff_appears_on_small_dominated_instances() {
        // 200 small items with spread efficiencies, ε = 1/5 → an EPS of
        // four buckets. The capacity (≈0.6 of total weight) lets the
        // greedy prefix consume the representatives of buckets 0–2 and
        // end inside bucket 3, so k = 3 and a cut-off ẽ_{k−2} = ẽ_1 is
        // emitted.
        let eps = Epsilon::new(1, 5).unwrap();
        let pairs: Vec<(u64, u64)> = (1..=200u64).map(|index| (2, index)).collect();
        let (_, tilde, seq) = build(pairs, 12_000, eps);
        assert!(seq.len() >= 3, "need a deep EPS for this test, got {seq}");
        let out = convert_greedy(&tilde, &seq);
        assert!(!out.singleton);
        assert!(out.large_selected.is_empty());
        assert!(out.e_small.is_some(), "expected a small cut-off from {out}");
    }

    #[test]
    fn empty_eps_yields_no_cutoff() {
        let eps = Epsilon::new(1, 2).unwrap();
        let (_, tilde, _) = build(vec![(60, 2), (40, 3)], 100, eps);
        let out = convert_greedy(&tilde, &EpsSequence::empty());
        assert_eq!(out.e_small, None);
    }

    #[test]
    fn display_formats() {
        let out = ConvertGreedyOutput {
            large_selected: vec![ItemId(1)],
            e_small: Some(7),
            singleton: false,
        };
        assert!(out.to_string().contains("singleton=false"));
    }
}
