//! The E15 acceptance tests:
//!
//! * the default seed range, crash+restart faults enabled, reports
//!   **zero** invariant violations under faithful recovery;
//! * a deliberately planted recovery bug (skipping journal replay) is
//!   caught and shrunk to a repro of ≤ 5 events;
//! * the smoke JSON is byte-identical across runs and matches the
//!   committed golden.

use lcakp_oracle::Seed;
use lcakp_service::RecoveryDiscipline;
use lcakp_sim::{run_range, run_smoke, SimConfig, SimEvent, Violation};

/// Mirrors `lcakp_bench::experiment_root("e15")`, so the golden test,
/// the bench bin, and CI all replay the identical range.
fn e15_root() -> Seed {
    Seed::from_entropy_u64(0x1ca_4b2e_2025).derive("e15", 0)
}

#[test]
fn default_seed_range_with_crash_faults_has_zero_violations() {
    let config = SimConfig::default();
    let report = run_range(&e15_root(), &config, 0..8).expect("range runs");
    for case in &report.cases {
        assert!(
            case.violations.is_empty(),
            "case {} violated: {:?}\nevents: {:?}",
            case.case,
            case.violations,
            case.events
        );
    }
    assert!(report.repro.is_none());
    // The range must actually exercise the machinery it certifies:
    // every schedule carries a crash, and at least one crash must fire.
    assert!(
        report.cases.iter().all(|case| case
            .events
            .iter()
            .any(|event| matches!(event, SimEvent::Crash { .. }))),
        "every generated schedule must contain a crash"
    );
    assert!(
        report.cases.iter().any(|case| case.stats.crashes > 0),
        "no crash fired across the whole range"
    );
}

#[test]
fn planted_skip_journal_replay_bug_is_caught_and_shrunk() {
    let config = SimConfig {
        recovery: RecoveryDiscipline::SkipJournalReplay,
        ..SimConfig::default()
    };
    let report = run_range(&e15_root(), &config, 0..8).expect("range runs");
    let repro = report
        .repro
        .as_ref()
        .expect("the planted bug must violate somewhere in the range");
    assert!(
        repro.shrunk.events.len() <= 5,
        "repro did not shrink: {} events\n{}",
        repro.shrunk.events.len(),
        repro.render()
    );
    // Skipping replay silently drops pre-crash dispositions, so the
    // surviving violation must be a liveness break (a dropped query) or
    // a divergence from the crash-free twin.
    assert!(
        repro.shrunk.violations.iter().any(|violation| matches!(
            violation,
            Violation::MissingOutcome { .. } | Violation::OutcomeDiverged { .. }
        )),
        "unexpected violation mix: {:?}",
        repro.shrunk.violations
    );
    // The minimal repro still needs a crash — the bug is in recovery,
    // after all — and renders replayably.
    assert!(repro
        .shrunk
        .events
        .iter()
        .any(|event| matches!(event, SimEvent::Crash { .. })));
    let rendered = repro.render();
    assert!(rendered.contains("crash(worker="), "{rendered}");
    assert!(rendered.contains("violation: "), "{rendered}");
}

#[test]
fn smoke_json_is_byte_identical_across_runs_and_matches_the_golden() {
    let first = run_smoke(&e15_root()).expect("smoke runs");
    let second = run_smoke(&e15_root()).expect("smoke reruns");
    assert_eq!(
        first, second,
        "the simulator must be byte-identical across runs"
    );
    // Regenerate with:
    //   LCAKP_REGEN_GOLDEN=1 cargo test -p lcakp-sim --test simulation
    // lcakp-lint: allow(D002) reason="opt-in golden regeneration for developers, no seeded behavior depends on it"
    if std::env::var_os("LCAKP_REGEN_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/e15_smoke.json");
        std::fs::write(path, format!("{}\n", first.trim_end())).expect("golden writes");
        return;
    }
    let golden = include_str!("golden/e15_smoke.json");
    assert_eq!(
        first.trim_end(),
        golden.trim_end(),
        "smoke output drifted from the committed golden; regenerate with\n\
         LCAKP_REGEN_GOLDEN=1 cargo test -p lcakp-sim --test simulation"
    );
}
