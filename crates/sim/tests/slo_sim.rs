//! The E17 acceptance tests:
//!
//! * the default seed range — every traffic shape, half the cases
//!   carrying an overload surge — reports **zero** invariant
//!   violations under the faithful admission controller, while every
//!   scenario meets its availability SLO target;
//! * the deliberately planted non-hysteretic controller is caught
//!   flapping and shrunk to a repro of ≤ 3 events;
//! * the smoke JSON is byte-identical across runs and matches the
//!   committed golden.

use lcakp_oracle::Seed;
use lcakp_service::AdmissionDiscipline;
use lcakp_sim::{run_slo_range, run_slo_smoke, SimEvent, SloSimConfig, Violation, E17_SMOKE_CASES};

/// Mirrors `lcakp_bench::experiment_root("e17")`, so the golden test,
/// the bench bin, and CI all replay the identical range.
fn e17_root() -> Seed {
    Seed::from_entropy_u64(0x1ca_4b2e_2025).derive("e17", 0)
}

#[test]
fn faithful_controller_survives_the_range_and_meets_every_slo() {
    let config = SloSimConfig::default();
    let report = run_slo_range(&e17_root(), &config, 0..E17_SMOKE_CASES).expect("range runs");
    for case in &report.cases {
        assert!(
            case.violations.is_empty(),
            "case {} violated: {:?}\nevents: {:?}",
            case.case,
            case.violations,
            case.events
        );
        assert!(
            case.stats.meets_slo,
            "case {} missed its SLO: availability {}/1000 < target {}/1000\nevents: {:?}",
            case.case,
            case.stats.availability_permille,
            case.stats.slo_target_permille,
            case.events
        );
    }
    assert!(report.repro.is_none());
    // The range must actually stress the controller it certifies:
    // every schedule carries a traffic event, some scenario must push
    // into overload and shed, the controller must transition both ways,
    // and at least one surge must be present.
    assert!(
        report.cases.iter().all(|case| case
            .events
            .iter()
            .any(|event| matches!(event, SimEvent::Traffic { .. }))),
        "every generated schedule must contain a traffic event"
    );
    assert!(
        report.cases.iter().any(|case| case.stats.shed > 0),
        "no scenario pushed the controller into shedding"
    );
    assert!(
        report.cases.iter().any(|case| case.stats.transitions >= 2),
        "no scenario drove the controller into overload and back"
    );
    assert!(
        report.cases.iter().any(|case| case
            .events
            .iter()
            .any(|event| matches!(event, SimEvent::OverloadSurge { .. }))),
        "the range must include at least one overload surge"
    );
}

#[test]
fn planted_no_hysteresis_bug_is_caught_and_shrunk() {
    let config = SloSimConfig {
        discipline: AdmissionDiscipline::NoHysteresis,
        ..SloSimConfig::default()
    };
    let report = run_slo_range(&e17_root(), &config, 0..E17_SMOKE_CASES).expect("range runs");
    let repro = report
        .repro
        .as_ref()
        .expect("the non-hysteretic controller must violate somewhere in the range");
    assert!(
        repro.shrunk.events.len() <= 3,
        "repro did not shrink: {} events\n{}",
        repro.shrunk.events.len(),
        repro.render()
    );
    // The planted bug's signature: state flips spaced closer than the
    // hysteresis window. The shrunk schedule must keep its traffic
    // event — with no arrivals there is nothing to flap over.
    assert!(
        repro
            .shrunk
            .violations
            .iter()
            .any(|violation| matches!(violation, Violation::AdmissionFlap { .. })),
        "unexpected violation mix: {:?}",
        repro.shrunk.violations
    );
    assert!(repro
        .shrunk
        .events
        .iter()
        .any(|event| matches!(event, SimEvent::Traffic { .. })));
    let rendered = repro.render();
    assert!(rendered.contains("traffic(shape="), "{rendered}");
    assert!(rendered.contains("admission-flap(shard="), "{rendered}");
}

#[test]
fn slo_smoke_json_is_byte_identical_across_runs_and_matches_the_golden() {
    let first = run_slo_smoke(&e17_root()).expect("smoke runs");
    let second = run_slo_smoke(&e17_root()).expect("smoke reruns");
    assert_eq!(
        first, second,
        "the SLO simulator must be byte-identical across runs"
    );
    // Regenerate with:
    //   LCAKP_REGEN_GOLDEN=1 cargo test -p lcakp-sim --test slo_sim
    // lcakp-lint: allow(D002) reason="opt-in golden regeneration for developers, no seeded behavior depends on it"
    if std::env::var_os("LCAKP_REGEN_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/e17_smoke.json");
        std::fs::write(path, format!("{}\n", first.trim_end())).expect("golden writes");
        return;
    }
    let golden = include_str!("golden/e17_smoke.json");
    assert_eq!(
        first.trim_end(),
        golden.trim_end(),
        "smoke output drifted from the committed golden; regenerate with\n\
         LCAKP_REGEN_GOLDEN=1 cargo test -p lcakp-sim --test slo_sim"
    );
}
