//! The E16 acceptance tests:
//!
//! * the default seed range — node crashes, restarts, partitions —
//!   reports **zero** invariant violations under faithful routing;
//! * the deliberately planted stale-ring routing bug is caught and
//!   shrunk to a repro of ≤ 3 events;
//! * the smoke JSON is byte-identical across runs and matches the
//!   committed golden.

use lcakp_oracle::Seed;
use lcakp_service::RoutingDiscipline;
use lcakp_sim::{run_cluster_range, run_cluster_smoke, ClusterSimConfig, SimEvent, Violation};

/// Mirrors `lcakp_bench::experiment_root("e16")`, so the golden test,
/// the bench bin, and CI all replay the identical range.
fn e16_root() -> Seed {
    Seed::from_entropy_u64(0x1ca_4b2e_2025).derive("e16", 0)
}

#[test]
fn default_seed_range_with_node_faults_has_zero_violations() {
    let config = ClusterSimConfig::default();
    let report = run_cluster_range(&e16_root(), &config, 0..8).expect("range runs");
    for case in &report.cases {
        assert!(
            case.violations.is_empty(),
            "case {} violated: {:?}\nevents: {:?}",
            case.case,
            case.violations,
            case.events
        );
    }
    assert!(report.repro.is_none());
    // The range must actually exercise the machinery it certifies:
    // every schedule carries a node crash, crashes must fire, and at
    // least one shard must survive an ownership change.
    assert!(
        report.cases.iter().all(|case| case
            .events
            .iter()
            .any(|event| matches!(event, SimEvent::NodeCrash { .. }))),
        "every generated schedule must contain a node crash"
    );
    assert!(
        report.cases.iter().any(|case| case.stats.node_crashes > 0),
        "no node crash fired across the whole range"
    );
    assert!(
        report.cases.iter().any(|case| case.stats.failovers > 0),
        "no shard failed over across the whole range"
    );
    assert!(
        report.cases.iter().any(|case| case
            .events
            .iter()
            .any(|event| matches!(event, SimEvent::Partition { .. }))),
        "the range must include at least one partition"
    );
}

#[test]
fn planted_stale_ring_bug_is_caught_and_shrunk() {
    let config = ClusterSimConfig {
        routing: RoutingDiscipline::StaleRing,
        ..ClusterSimConfig::default()
    };
    let report = run_cluster_range(&e16_root(), &config, 0..8).expect("range runs");
    let repro = report
        .repro
        .as_ref()
        .expect("stale-ring routing must violate somewhere in the range");
    assert!(
        repro.shrunk.events.len() <= 3,
        "repro did not shrink: {} events\n{}",
        repro.shrunk.events.len(),
        repro.render()
    );
    // The stale router sheds while the audit trail proves a live
    // replica was reachable — that is the bug's signature — and the
    // sheds also diverge from the fault-free twin.
    assert!(
        repro
            .shrunk
            .violations
            .iter()
            .any(|violation| matches!(violation, Violation::ShedWithLiveReplica { .. })),
        "unexpected violation mix: {:?}",
        repro.shrunk.violations
    );
    assert!(repro
        .shrunk
        .events
        .iter()
        .any(|event| matches!(event, SimEvent::NodeCrash { .. })));
    let rendered = repro.render();
    assert!(rendered.contains("node-crash(node="), "{rendered}");
    assert!(rendered.contains("shed-with-live-replica("), "{rendered}");
}

#[test]
fn cluster_smoke_json_is_byte_identical_across_runs_and_matches_the_golden() {
    let first = run_cluster_smoke(&e16_root()).expect("smoke runs");
    let second = run_cluster_smoke(&e16_root()).expect("smoke reruns");
    assert_eq!(
        first, second,
        "the cluster simulator must be byte-identical across runs"
    );
    // Regenerate with:
    //   LCAKP_REGEN_GOLDEN=1 cargo test -p lcakp-sim --test cluster_sim
    // lcakp-lint: allow(D002) reason="opt-in golden regeneration for developers, no seeded behavior depends on it"
    if std::env::var_os("LCAKP_REGEN_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/e16_smoke.json");
        std::fs::write(path, format!("{}\n", first.trim_end())).expect("golden writes");
        return;
    }
    let golden = include_str!("golden/e16_smoke.json");
    assert_eq!(
        first.trim_end(),
        golden.trim_end(),
        "smoke output drifted from the committed golden; regenerate with\n\
         LCAKP_REGEN_GOLDEN=1 cargo test -p lcakp-sim --test cluster_sim"
    );
}
