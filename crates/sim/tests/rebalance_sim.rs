//! The E18 acceptance tests:
//!
//! * the default seed range — hot-shard, bursty, and query-of-death
//!   traffic with surges, node crashes, restarts, and partitions
//!   layered on — reports **zero** invariant violations under faithful
//!   routing, promotions actually fire, and at least one hot-shard
//!   scenario is demonstrably relieved against its frozen-ring twin;
//! * the deliberately planted stale-epoch router is caught shedding on
//!   ring-epoch mismatches and shrunk to a repro of ≤ 2 events;
//! * the smoke JSON is byte-identical across runs and matches the
//!   committed golden.

use lcakp_oracle::Seed;
use lcakp_service::RebalanceDiscipline;
use lcakp_sim::{
    run_rebalance_range, run_rebalance_smoke, RebalanceSimConfig, SimEvent, Violation,
    E18_SMOKE_CASES,
};

/// Mirrors `lcakp_bench::experiment_root("e18")`, so the golden test,
/// the bench bin, and CI all replay the identical range.
fn e18_root() -> Seed {
    Seed::from_entropy_u64(0x1ca_4b2e_2025).derive("e18", 0)
}

#[test]
fn faithful_routing_survives_the_range_and_relieves_a_hot_shard() {
    let config = RebalanceSimConfig::default();
    let report = run_rebalance_range(&e18_root(), &config, 0..E18_SMOKE_CASES).expect("range runs");
    for case in &report.cases {
        assert!(
            case.violations.is_empty(),
            "case {} violated: {:?}\nevents: {:?}",
            case.case,
            case.violations,
            case.events
        );
        assert_eq!(
            case.stats.stale_sheds, 0,
            "faithful routing must never shed on an epoch\nevents: {:?}",
            case.events
        );
    }
    assert!(report.repro.is_none());
    // The range must actually stress the controller it certifies:
    // every schedule carries a traffic event, promotions must fire
    // somewhere, faults must force ownership changes, and the
    // hot-shard scenario the controller exists for must be relieved.
    assert!(
        report.cases.iter().all(|case| case
            .events
            .iter()
            .any(|event| matches!(event, SimEvent::Traffic { .. }))),
        "every generated schedule must contain a traffic event"
    );
    assert!(
        report.cases.iter().any(|case| case.stats.promotions > 0),
        "no scenario pushed a node into promoting a replica"
    );
    assert!(
        report
            .cases
            .iter()
            .any(|case| case.stats.promotions >= 2 && case.stats.final_epoch >= 2),
        "no scenario bumped the ring epoch more than once"
    );
    assert!(
        report.cases.iter().any(|case| case
            .events
            .iter()
            .any(|event| matches!(event, SimEvent::NodeCrash { .. }))),
        "the range must include at least one node crash"
    );
    assert!(
        report.hot_shard_relieved(),
        "a hot-shard scenario must be demonstrably relieved vs the frozen-ring twin"
    );
}

#[test]
fn planted_stale_epoch_bug_is_caught_and_shrunk() {
    let config = RebalanceSimConfig {
        routing: RebalanceDiscipline::StaleEpoch,
        ..RebalanceSimConfig::default()
    };
    let report = run_rebalance_range(&e18_root(), &config, 0..E18_SMOKE_CASES).expect("range runs");
    let repro = report
        .repro
        .as_ref()
        .expect("the stale-epoch router must violate somewhere in the range");
    assert!(
        repro.shrunk.events.len() <= 2,
        "repro did not shrink: {} events\n{}",
        repro.shrunk.events.len(),
        repro.render()
    );
    // The planted bug's signature: arrivals shed because the router
    // consulted the boot ring view after a promotion. The shrunk
    // schedule must keep its traffic event — with no overload there is
    // no promotion, and without a promotion the stale view is harmless.
    assert!(
        repro
            .shrunk
            .violations
            .iter()
            .any(|violation| matches!(violation, Violation::StaleEpochShed { .. })),
        "unexpected violation mix: {:?}",
        repro.shrunk.violations
    );
    assert!(repro
        .shrunk
        .events
        .iter()
        .any(|event| matches!(event, SimEvent::Traffic { .. })));
    let rendered = repro.render();
    assert!(rendered.contains("traffic(shape="), "{rendered}");
    assert!(rendered.contains("stale-epoch-shed(index="), "{rendered}");
}

#[test]
fn rebalance_smoke_json_is_byte_identical_across_runs_and_matches_the_golden() {
    let first = run_rebalance_smoke(&e18_root()).expect("smoke runs");
    let second = run_rebalance_smoke(&e18_root()).expect("smoke reruns");
    assert_eq!(
        first, second,
        "the rebalance simulator must be byte-identical across runs"
    );
    // Regenerate with:
    //   LCAKP_REGEN_GOLDEN=1 cargo test -p lcakp-sim --test rebalance_sim
    // lcakp-lint: allow(D002) reason="opt-in golden regeneration for developers, no seeded behavior depends on it"
    if std::env::var_os("LCAKP_REGEN_GOLDEN").is_some() {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/e18_smoke.json");
        std::fs::write(path, format!("{}\n", first.trim_end())).expect("golden writes");
        return;
    }
    let golden = include_str!("golden/e18_smoke.json");
    assert_eq!(
        first.trim_end(),
        golden.trim_end(),
        "smoke output drifted from the committed golden; regenerate with\n\
         LCAKP_REGEN_GOLDEN=1 cargo test -p lcakp-sim --test rebalance_sim"
    );
}
