//! Greedy fault-schedule shrinking.
//!
//! When a schedule violates an invariant, [`shrink`] reduces it to a
//! *locally minimal* repro: two alternating passes — drop one event,
//! halve one event's magnitudes — are applied greedily until a full
//! round changes nothing. Every accepted candidate still violates, so
//! the final schedule is replayable evidence, typically a bare
//! crash(+restart) pair.

use crate::invariants::Violation;
use crate::schedule::SimEvent;

/// A shrunk repro: the minimal surviving schedule, the violations it
/// still triggers, and how many candidate schedules were tried.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Shrunk {
    /// The locally minimal event list.
    pub events: Vec<SimEvent>,
    /// Violations the minimal schedule still triggers.
    pub violations: Vec<Violation>,
    /// Candidate schedules evaluated along the way.
    pub attempts: usize,
}

/// One event with its magnitudes halved, or `None` when halving cannot
/// change it (everything already at its floor).
fn halved(event: &SimEvent) -> Option<SimEvent> {
    let smaller = match *event {
        SimEvent::Crash {
            worker,
            tick_permille,
            torn_keep,
        } => SimEvent::Crash {
            worker,
            tick_permille: tick_permille / 2,
            torn_keep: torn_keep.map(|keep| keep / 2),
        },
        SimEvent::Restart { .. } => return None,
        SimEvent::CorruptionBurst {
            period,
            len,
            transient_permille,
            corruption_permille,
        } => SimEvent::CorruptionBurst {
            period,
            len: (len / 2).max(1),
            transient_permille: transient_permille / 2,
            corruption_permille: corruption_permille / 2,
        },
        SimEvent::LatencySpike {
            start_tick,
            len_ticks,
            extra_cost,
        } => SimEvent::LatencySpike {
            start_tick: start_tick / 2,
            len_ticks: (len_ticks / 2).max(1),
            extra_cost: (extra_cost / 2).max(1),
        },
        SimEvent::BudgetSqueeze { slack_accesses } => SimEvent::BudgetSqueeze {
            slack_accesses: slack_accesses / 2,
        },
        SimEvent::NodeCrash {
            node,
            tick_permille,
            torn_keep,
        } => SimEvent::NodeCrash {
            node,
            tick_permille: tick_permille / 2,
            torn_keep: torn_keep.map(|keep| keep / 2),
        },
        SimEvent::NodeRestart {
            node,
            tick_permille,
        } => SimEvent::NodeRestart {
            node,
            tick_permille: tick_permille / 2,
        },
        SimEvent::Partition {
            cut_mask,
            from_permille,
            heal_permille,
        } => SimEvent::Partition {
            cut_mask,
            from_permille: from_permille / 2,
            heal_permille: heal_permille.map(|heal| heal / 2),
        },
        // The shape is categorical and the gap is a load *intensity* —
        // halving it makes the traffic heavier, not simpler — so a
        // traffic event only shrinks by being dropped.
        SimEvent::Traffic { .. } => return None,
        SimEvent::OverloadSurge {
            start_permille,
            len_permille,
            gap_div,
        } => SimEvent::OverloadSurge {
            start_permille: start_permille / 2,
            len_permille: (len_permille / 2).max(1),
            gap_div: (gap_div / 2).max(1),
        },
    };
    (smaller != *event).then_some(smaller)
}

/// Shrinks a violating schedule to a locally minimal one. `violates`
/// re-runs the simulation for a candidate and returns the violations it
/// triggers (empty = the candidate passes, so the shrink step is
/// rejected). The input schedule must itself violate; the function
/// panics otherwise, because "shrink a passing schedule" is always a
/// caller bug.
pub fn shrink<F>(events: &[SimEvent], mut violates: F) -> Shrunk
where
    F: FnMut(&[SimEvent]) -> Vec<Violation>,
{
    let mut current = events.to_vec();
    let mut violations = violates(&current);
    let mut attempts = 1;
    assert!(
        !violations.is_empty(),
        "shrink called on a schedule with no violations"
    );
    loop {
        let mut changed = false;
        // Drop pass, later events first so crash/restart pairing of the
        // survivors is preserved while a trailing restart is tried
        // first for removal.
        let mut position = current.len();
        while position > 0 {
            position -= 1;
            let mut candidate = current.clone();
            candidate.remove(position);
            attempts += 1;
            let candidate_violations = violates(&candidate);
            if !candidate_violations.is_empty() {
                current = candidate;
                violations = candidate_violations;
                changed = true;
            }
        }
        // Halve pass: shrink magnitudes one event at a time.
        for position in 0..current.len() {
            let Some(smaller) = halved(&current[position]) else {
                continue;
            };
            let mut candidate = current.clone();
            candidate[position] = smaller;
            attempts += 1;
            let candidate_violations = violates(&candidate);
            if !candidate_violations.is_empty() {
                current = candidate;
                violations = candidate_violations;
                changed = true;
            }
        }
        if !changed {
            return Shrunk {
                events: current,
                violations,
                attempts,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy oracle: violates iff a crash of worker 0 with
    /// `tick_permille > 0` is present. Everything else is noise the
    /// shrinker must strip.
    fn toy_violates(events: &[SimEvent]) -> Vec<Violation> {
        let bad = events.iter().any(|event| {
            matches!(
                event,
                SimEvent::Crash {
                    worker: 0,
                    tick_permille,
                    ..
                } if *tick_permille > 0
            )
        });
        if bad {
            vec![Violation::MissingOutcome { index: 0 }]
        } else {
            Vec::new()
        }
    }

    #[test]
    fn shrinks_to_the_single_guilty_event_at_minimal_magnitude() {
        let events = vec![
            SimEvent::BudgetSqueeze {
                slack_accesses: 100,
            },
            SimEvent::Crash {
                worker: 0,
                tick_permille: 800,
                torn_keep: Some(40),
            },
            SimEvent::Restart { worker: 0 },
            SimEvent::LatencySpike {
                start_tick: 10,
                len_ticks: 10,
                extra_cost: 2,
            },
        ];
        let shrunk = shrink(&events, toy_violates);
        // Halving can never reach tick_permille == 0 from 800 without
        // passing through a still-violating value, so the fixed point is
        // the lone crash at tick 1/1000 with nothing torn.
        assert_eq!(
            shrunk.events,
            vec![SimEvent::Crash {
                worker: 0,
                tick_permille: 1,
                torn_keep: Some(0),
            }]
        );
        assert_eq!(
            shrunk.violations,
            vec![Violation::MissingOutcome { index: 0 }]
        );
        assert!(shrunk.attempts > 4);
    }

    #[test]
    #[should_panic(expected = "no violations")]
    fn refuses_a_passing_schedule() {
        shrink(&[SimEvent::Restart { worker: 0 }], toy_violates);
    }
}
