//! The E17 open-loop traffic simulator: seed-derived traffic schedules
//! against the adaptive admission controller.
//!
//! Each case derives a [`SimEvent::Traffic`] shape (cycling through all
//! five arrival processes) and, in half the cases, an
//! [`SimEvent::OverloadSurge`], from `(root, case)`. The schedule maps
//! onto a replayable arrival trace — the traffic gap is permille of the
//! world's *measured per-query service cost*, so 1000 offers exactly one
//! server's capacity — and the trace runs twice through
//! [`run_open_loop`]: the *controlled* run under the discipline under
//! test, and its *admission-free twin* (unbounded queue, nothing shed).
//! [`check_slo_run`] then verifies the three E17 invariants against the
//! pair:
//!
//! * **admission honesty** — every `Overload` shed carries a signal
//!   that actually exceeded a threshold;
//! * **hysteresis** — no controller flips state twice within the
//!   hysteresis window;
//! * **liveness** — offered load below capacity ⇒ zero overload sheds.
//!
//! [`AdmissionDiscipline::Faithful`] must survive every schedule while
//! meeting its per-scenario availability SLO;
//! [`AdmissionDiscipline::NoHysteresis`] is the planted bug the
//! simulator exists to catch (and shrink to a replayable repro).

use crate::calibrate::calibrate_cost;
use crate::harness::Repro;
use crate::invariants::{check_slo_run, Violation};
use crate::schedule::{generate_slo_schedule, SimEvent};
use crate::shrink::shrink;
use lcakp_core::{LcaError, LcaKp};
use lcakp_knapsack::iky::Epsilon;
use lcakp_knapsack::NormalizedInstance;
use lcakp_oracle::{InstanceOracle, Seed};
use lcakp_reproducible::SampleBudget;
use lcakp_service::{
    generate_trace, run_open_loop, seed_to_u64, AdmissionConfig, AdmissionDiscipline, Arrival,
    BreakerConfig, OpenLoopConfig, OpenLoopReport, ServiceConfig, TrafficConfig, TrafficShape,
};
use lcakp_workloads::{Family, WorkloadSpec};
use std::fmt::Write as _;
use std::ops::Range;

/// SLO-simulator tuning. The defaults keep one case (twin + controlled
/// run over the whole trace) in the tens of milliseconds so seed ranges
/// and shrink loops stay affordable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloSimConfig {
    /// Instance size (arrivals query items `0..n`).
    pub n: usize,
    /// Single-server shards the engine runs.
    pub shards: usize,
    /// Arrivals per generated trace.
    pub arrivals: usize,
    /// Admission discipline under test —
    /// [`AdmissionDiscipline::Faithful`] must survive every schedule;
    /// [`AdmissionDiscipline::NoHysteresis`] is the planted bug.
    pub discipline: AdmissionDiscipline,
}

impl Default for SloSimConfig {
    fn default() -> Self {
        SloSimConfig {
            n: 24,
            shards: 2,
            arrivals: 160,
            discipline: AdmissionDiscipline::Faithful,
        }
    }
}

/// The fixed world one SLO simulation runs in: the instance, the LCA,
/// the seeds, and the calibration the schedules are expressed against
/// (the measured per-query service cost). Everything here depends only
/// on `(root, config)` — the schedule is the entire difference between
/// two cases.
#[derive(Debug)]
pub struct SloWorld {
    norm: NormalizedInstance,
    lca: LcaKp,
    shared_seed: Seed,
    service_root: Seed,
    trace_root: Seed,
    service: ServiceConfig,
    admission: AdmissionConfig,
    shards: usize,
    arrivals: usize,
    /// Measured mean service ticks per query (the unit every schedule
    /// gap is permille of).
    cost: u64,
}

/// Headline counters of one controlled run (rendered into the smoke
/// JSON).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloCaseStats {
    /// Arrivals the trace offered.
    pub offered: u64,
    /// Arrivals answered.
    pub answered: u64,
    /// Arrivals shed by the controller.
    pub shed: u64,
    /// Answered arrivals that missed the end-to-end SLO deadline.
    pub deadline_missed: u64,
    /// Permille availability (sheds and misses both count against it).
    pub availability_permille: u32,
    /// p99 end-to-end latency, virtual ticks (bucket upper bound).
    pub p99_ticks: u64,
    /// Deepest admission queue observed on any shard.
    pub max_queue_depth: u32,
    /// Controller state flips across the run.
    pub transitions: usize,
    /// The scenario's availability SLO target, permille.
    pub slo_target_permille: u32,
    /// Whether availability met the target.
    pub meets_slo: bool,
}

/// One simulated case: its schedule, run counters, violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloCaseResult {
    /// The case number (schedule seed index).
    pub case: u64,
    /// The generated traffic schedule.
    pub events: Vec<SimEvent>,
    /// Counters of the controlled run.
    pub stats: SloCaseStats,
    /// Invariant violations (empty = the case passed).
    pub violations: Vec<Violation>,
}

/// Everything [`run_slo_range`] learned: per-case results plus the
/// first violation's shrunk repro.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SloSimReport {
    /// One entry per case, in case order.
    pub cases: Vec<SloCaseResult>,
    /// Shrunk repro of the first violating case, if any violated.
    pub repro: Option<Repro>,
}

impl SloSimReport {
    /// Total violations across the range.
    pub fn total_violations(&self) -> usize {
        self.cases.iter().map(|case| case.violations.len()).sum()
    }

    /// Whether every case met its availability SLO target.
    pub fn all_meet_slo(&self) -> bool {
        self.cases.iter().all(|case| case.stats.meets_slo)
    }
}

/// The availability SLO target of one scenario, in permille. Targets
/// are per-shape because the shapes stress different things: a clean
/// steady or diurnal trace must stay near-perfect, while a hot shard, a
/// query of death, or an overload surge *forces* explicit sheds — there
/// the target asserts the controller keeps the damage bounded instead
/// of collapsing.
#[must_use]
pub fn slo_target_permille(events: &[SimEvent]) -> u32 {
    let surged = events
        .iter()
        .any(|event| matches!(event, SimEvent::OverloadSurge { .. }));
    let shape = events.iter().find_map(|event| match event {
        SimEvent::Traffic { shape, .. } => Some(*shape),
        _ => None,
    });
    let base = match shape {
        Some(TrafficShape::Steady | TrafficShape::Diurnal) => 950,
        Some(TrafficShape::Bursty) => 850,
        Some(TrafficShape::HotShard) => 700,
        Some(TrafficShape::QueryOfDeath) => 450,
        None => 1000,
    };
    if surged {
        base / 2
    } else {
        base
    }
}

impl SloWorld {
    /// Builds the world for `root`: the same dominated instance family
    /// and tuning as the E15/E16 worlds — under SLO-specific domain
    /// labels, so the simulators' random streams stay independent —
    /// then calibrates the per-query service cost by timing a
    /// back-to-back probe run, and scales the SLO deadline and
    /// hysteresis window to it.
    ///
    /// # Errors
    ///
    /// Propagates workload generation, LCA construction, and probe-run
    /// errors.
    pub fn build(root: &Seed, config: &SloSimConfig) -> Result<SloWorld, LcaError> {
        let workload_seed = seed_to_u64(&root.derive("sim/slo-workload", 0));
        let norm = WorkloadSpec::new(Family::SmallDominated, config.n, workload_seed)
            .generate_normalized()
            .map_err(LcaError::from)?;
        let lca =
            LcaKp::new(Epsilon::new(1, 3)?)?.with_budget(SampleBudget::Calibrated { factor: 0.01 });
        let shared_seed = root.derive("sim/slo-shared", 0);
        let service_root = root.derive("sim/slo-serving", 0);
        let trace_root = root.derive("sim/slo-trace", 0);
        let mut service = ServiceConfig {
            workers: 1,
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown_ticks: 6,
                half_open_probes: 1,
            },
            ..ServiceConfig::default()
        };

        // Calibration probe (shared with the E18 world): the measured
        // mean ticks per query is the unit every schedule gap is
        // expressed in.
        let cost = calibrate_cost(
            &lca,
            &InstanceOracle::new(&norm),
            &shared_seed,
            &service_root,
            &trace_root,
            &service,
            config.n,
        )?;

        // An end-to-end deadline of 8 service costs: unqueued queries
        // meet it easily; a queue of ~7 starts missing.
        service.deadline_ticks = cost * 8;
        let admission = AdmissionConfig {
            enter_queue_depth: 6,
            exit_queue_depth: 2,
            enter_miss_permille: 250,
            exit_miss_permille: 60,
            // The hysteresis window in trace terms: ~8 mean arrivals at
            // capacity. The faithful controller dwells this long
            // between flips; the planted bug ignores it.
            hysteresis_ticks: cost * 8,
            shed_permille: 400,
            queue_depth_normal: 12,
            queue_depth_overloaded: 4,
        };
        Ok(SloWorld {
            norm,
            lca,
            shared_seed,
            service_root,
            trace_root,
            service,
            admission,
            shards: config.shards,
            arrivals: config.arrivals,
            cost,
        })
    }

    /// The calibrated per-query service cost (ticks).
    #[must_use]
    pub fn cost(&self) -> u64 {
        self.cost
    }

    /// Maps a schedule onto its arrival trace: the traffic event picks
    /// the shape and scales the mean gap by the calibrated cost; each
    /// overload surge then compresses the gaps inside its window. An
    /// event list with no traffic event maps to the empty trace.
    #[must_use]
    pub fn build_trace(&self, events: &[SimEvent]) -> Vec<Arrival> {
        let Some((shape, gap_permille)) = events.iter().find_map(|event| match event {
            SimEvent::Traffic {
                shape,
                gap_permille,
            } => Some((*shape, *gap_permille)),
            _ => None,
        }) else {
            return Vec::new();
        };
        let mut trace = generate_trace(
            &self.trace_root,
            &TrafficConfig {
                shape,
                arrivals: self.arrivals,
                mean_gap_ticks: (self.cost * u64::from(gap_permille) / 1000).max(1),
                universe: self.norm.len(),
                shards: self.shards,
            },
        );
        for event in events {
            if let SimEvent::OverloadSurge {
                start_permille,
                len_permille,
                gap_div,
            } = event
            {
                apply_surge(&mut trace, *start_permille, *len_permille, *gap_div);
            }
        }
        trace
    }

    /// Runs one schedule: builds the trace, runs the admission-free
    /// twin and the controlled run, and checks the E17 invariants
    /// against the pair.
    ///
    /// # Errors
    ///
    /// Propagates hard serving errors from [`run_open_loop`].
    pub fn run_schedule(
        &self,
        discipline: AdmissionDiscipline,
        events: &[SimEvent],
    ) -> Result<(SloCaseStats, Vec<Violation>), LcaError> {
        let trace = self.build_trace(events);
        let oracle = InstanceOracle::new(&self.norm);
        let twin = run_open_loop(
            &self.lca,
            &oracle,
            &self.shared_seed,
            &self.service_root,
            &trace,
            &OpenLoopConfig {
                service: self.service.clone(),
                admission: self.admission,
                discipline: None,
                shards: self.shards,
            },
        )?;
        let controlled = run_open_loop(
            &self.lca,
            &oracle,
            &self.shared_seed,
            &self.service_root,
            &trace,
            &OpenLoopConfig {
                service: self.service.clone(),
                admission: self.admission,
                discipline: Some(discipline),
                shards: self.shards,
            },
        )?;
        let violations = check_slo_run(&twin, &controlled, &self.admission);
        let target = slo_target_permille(events);
        let stats = SloCaseStats {
            offered: controlled.slo.offered,
            answered: controlled.slo.answered,
            shed: controlled.slo.shed,
            deadline_missed: controlled.slo.deadline_missed,
            availability_permille: controlled.slo.availability_permille,
            p99_ticks: controlled.slo.p99_ticks,
            max_queue_depth: controlled.max_queue_depth,
            transitions: controlled.transitions.len(),
            slo_target_permille: target,
            meets_slo: controlled.slo.meets(target),
        };
        Ok((stats, violations))
    }

    /// The controlled run alone (no twin, no checks) — what the bench
    /// bin prints availability tables from.
    ///
    /// # Errors
    ///
    /// Propagates hard serving errors from [`run_open_loop`].
    pub fn run_controlled(
        &self,
        discipline: AdmissionDiscipline,
        events: &[SimEvent],
    ) -> Result<OpenLoopReport, LcaError> {
        let trace = self.build_trace(events);
        run_open_loop(
            &self.lca,
            &InstanceOracle::new(&self.norm),
            &self.shared_seed,
            &self.service_root,
            &trace,
            &OpenLoopConfig {
                service: self.service.clone(),
                admission: self.admission,
                discipline: Some(discipline),
                shards: self.shards,
            },
        )
    }

    /// Convenience for shrink loops: violations only, with hard errors
    /// treated as "no violation" (a schedule that cannot even run is
    /// not a smaller repro of an invariant break).
    pub fn violations_for(
        &self,
        discipline: AdmissionDiscipline,
        events: &[SimEvent],
    ) -> Vec<Violation> {
        self.run_schedule(discipline, events)
            .map(|(_, violations)| violations)
            .unwrap_or_default()
    }
}

/// Compresses the gaps of every arrival whose (pre-surge) tick falls in
/// the window `[start, start+len)` — both permille of the trace horizon
/// — by `gap_div`, then rebuilds the cumulative ticks so they stay
/// strictly increasing.
pub(crate) fn apply_surge(
    trace: &mut [Arrival],
    start_permille: u32,
    len_permille: u32,
    gap_div: u32,
) {
    let div = u64::from(gap_div.max(1));
    let horizon = trace.last().map_or(0, |arrival| arrival.at_tick);
    let start = horizon * u64::from(start_permille) / 1000;
    let end = start + horizon * u64::from(len_permille) / 1000;
    let mut previous_original = 0u64;
    let mut previous_new = 0u64;
    for arrival in trace.iter_mut() {
        let mut gap = arrival.at_tick - previous_original;
        if arrival.at_tick >= start && arrival.at_tick < end {
            gap /= div;
        }
        previous_original = arrival.at_tick;
        previous_new += gap.max(1);
        arrival.at_tick = previous_new;
    }
}

/// Runs the cases in `range` against one SLO world, shrinking the
/// first violating schedule (if any) to a minimal repro.
///
/// # Errors
///
/// Propagates world construction and [`run_open_loop`] errors.
pub fn run_slo_range(
    root: &Seed,
    config: &SloSimConfig,
    range: Range<u64>,
) -> Result<SloSimReport, LcaError> {
    let world = SloWorld::build(root, config)?;
    let mut cases = Vec::new();
    let mut repro = None;
    for case in range {
        let events = generate_slo_schedule(root, case);
        let (stats, violations) = world.run_schedule(config.discipline, &events)?;
        if !violations.is_empty() && repro.is_none() {
            let shrunk = shrink(&events, |candidate| {
                world.violations_for(config.discipline, candidate)
            });
            repro = Some(Repro { case, shrunk });
        }
        cases.push(SloCaseResult {
            case,
            events,
            stats,
            violations,
        });
    }
    Ok(SloSimReport { cases, repro })
}

/// Renders a range report as canonical JSON: fixed field order, no
/// floats, no ambient state — two runs with the same root must be
/// byte-identical. This is what the `e17_slo --smoke` golden pins
/// (together with the planted-bug section appended by
/// [`run_slo_smoke`]).
#[must_use]
pub fn render_slo_json(label: &str, config: &SloSimConfig, report: &SloSimReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"label\": \"{label}\",");
    let _ = writeln!(out, "  \"n\": {},", config.n);
    let _ = writeln!(out, "  \"shards\": {},", config.shards);
    let _ = writeln!(out, "  \"arrivals\": {},", config.arrivals);
    let _ = writeln!(out, "  \"discipline\": \"{}\",", config.discipline);
    let _ = writeln!(out, "  \"cases\": [");
    for (position, case) in report.cases.iter().enumerate() {
        let events: Vec<String> = case
            .events
            .iter()
            .map(|event| format!("\"{event}\""))
            .collect();
        let violations: Vec<String> = case
            .violations
            .iter()
            .map(|violation| format!("\"{violation}\""))
            .collect();
        let comma = if position + 1 < report.cases.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"case\": {}, \"events\": [{}], \"offered\": {}, \"answered\": {}, \
             \"shed\": {}, \"missed\": {}, \"availability\": {}, \"p99\": {}, \
             \"max_queue\": {}, \"transitions\": {}, \"target\": {}, \"meets\": {}, \
             \"violations\": [{}]}}{comma}",
            case.case,
            events.join(", "),
            case.stats.offered,
            case.stats.answered,
            case.stats.shed,
            case.stats.deadline_missed,
            case.stats.availability_permille,
            case.stats.p99_ticks,
            case.stats.max_queue_depth,
            case.stats.transitions,
            case.stats.slo_target_permille,
            case.stats.meets_slo,
            violations.join(", "),
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"total_violations\": {},",
        report.total_violations()
    );
    let _ = writeln!(out, "  \"all_meet_slo\": {},", report.all_meet_slo());
    let _ = writeln!(
        out,
        "  \"repro\": {}",
        report.repro.as_ref().map_or_else(
            || "null".to_string(),
            |repro| format!(
                "{{\"case\": {}, \"events\": {}}}",
                repro.case,
                repro.shrunk.events.len()
            )
        )
    );
    let _ = write!(out, "}}");
    out
}

/// Cases the smoke run covers (CI diffs its JSON against the golden).
pub const E17_SMOKE_CASES: u64 = 10;

/// Hunts for the planted bug: runs `discipline` over cases from 0
/// until a schedule violates (bounded by `max_cases`), then shrinks it
/// to a minimal repro.
///
/// # Errors
///
/// Propagates world construction and [`run_open_loop`] errors.
pub fn hunt_planted_bug(
    root: &Seed,
    config: &SloSimConfig,
    max_cases: u64,
) -> Result<Option<Repro>, LcaError> {
    let world = SloWorld::build(root, config)?;
    for case in 0..max_cases {
        let events = generate_slo_schedule(root, case);
        let violations = world.violations_for(config.discipline, &events);
        if !violations.is_empty() {
            let shrunk = shrink(&events, |candidate| {
                world.violations_for(config.discipline, candidate)
            });
            return Ok(Some(Repro { case, shrunk }));
        }
    }
    Ok(None)
}

/// Runs the committed smoke for the `e17_slo --smoke` bin and the
/// golden test: [`E17_SMOKE_CASES`] cases under the faithful
/// discipline, plus the planted-bug section — the non-hysteretic
/// controller hunted over the same schedules and shrunk to its minimal
/// repro.
///
/// # Errors
///
/// Propagates [`run_slo_range`] and [`hunt_planted_bug`] errors.
pub fn run_slo_smoke(root: &Seed) -> Result<String, LcaError> {
    let config = SloSimConfig::default();
    let report = run_slo_range(root, &config, 0..E17_SMOKE_CASES)?;
    let faithful = render_slo_json("e17-smoke", &config, &report);

    let bug_config = SloSimConfig {
        discipline: AdmissionDiscipline::NoHysteresis,
        ..config
    };
    let repro = hunt_planted_bug(root, &bug_config, E17_SMOKE_CASES)?;
    let planted = repro.map_or_else(
        || "null".to_string(),
        |repro| {
            let events: Vec<String> = repro
                .shrunk
                .events
                .iter()
                .map(|event| format!("\"{event}\""))
                .collect();
            let violations: Vec<String> = repro
                .shrunk
                .violations
                .iter()
                .map(|violation| format!("\"{violation}\""))
                .collect();
            format!(
                "{{\"discipline\": \"{}\", \"case\": {}, \"events\": [{}], \
                 \"violations\": [{}]}}",
                bug_config.discipline,
                repro.case,
                events.join(", "),
                violations.join(", "),
            )
        },
    );

    // Splice the planted-bug section before the closing brace so the
    // golden pins both halves of the acceptance criteria in one file.
    let body = faithful
        .strip_suffix('}')
        .expect("render_slo_json ends with a closing brace")
        .trim_end()
        .to_string();
    Ok(format!("{body},\n  \"planted\": {planted}\n}}"))
}
