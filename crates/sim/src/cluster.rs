//! The E16 cluster simulator: node-level fault schedules against the
//! simulated multi-node runtime.
//!
//! Each case derives node crashes, restarts, and partitions from
//! `(root, case)`, runs [`serve_cluster`] twice — the faulted run and
//! its fault-free twin — and checks the cluster invariants: failover
//! transparency, exactly-one outcome per query, routing honesty (no
//! shed while a live replica was reachable), journal discipline on the
//! shipped per-shard journals, and **replica byte-identity**: every
//! shard is re-served standalone (what any replica computes from the
//! shared seeds alone, per Theorem 4.1's consistency guarantee) and the
//! answers the cluster acknowledged must match byte-for-byte on every
//! surviving replica.
//!
//! Schedule ticks are permille of the fault-free *cluster horizon* (the
//! max shard end tick), so shrunk schedules stay meaningful across
//! instance sizes exactly as in the E15 harness.

use crate::harness::Repro;
use crate::invariants::{check_cluster_run, Violation};
use crate::schedule::{generate_cluster_schedule, SimEvent};
use crate::shrink::shrink;
use lcakp_core::{LcaError, LcaKp};
use lcakp_knapsack::iky::Epsilon;
use lcakp_knapsack::{ItemId, NormalizedInstance};
use lcakp_oracle::{InstanceOracle, Seed};
use lcakp_reproducible::SampleBudget;
use lcakp_service::{
    seed_to_u64, serve_cluster, serve_shard_standalone, BreakerConfig, ClusterConfig,
    ClusterReport, Disposition, NodeEvent, NodeId, QueryOutcome, Ring, RoutingDiscipline,
    ServiceConfig,
};
use lcakp_workloads::{Family, WorkloadSpec};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::ops::Range;

/// Cluster-simulator tuning. The defaults keep one case (twin +
/// faulted run + per-shard standalone replays) in the hundreds of
/// milliseconds so seed ranges and shrink loops stay affordable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterSimConfig {
    /// Instance size (= batch size: the batch queries every item).
    pub n: usize,
    /// Nodes in the simulated membership.
    pub nodes: usize,
    /// Replicas per shard.
    pub replication: usize,
    /// Shards queries are routed over.
    pub shards: usize,
    /// Routing discipline under test — [`RoutingDiscipline::Faithful`]
    /// must survive every schedule; [`RoutingDiscipline::StaleRing`] is
    /// the planted bug the simulator exists to catch.
    pub routing: RoutingDiscipline,
}

impl Default for ClusterSimConfig {
    fn default() -> Self {
        ClusterSimConfig {
            n: 24,
            nodes: 4,
            replication: 2,
            shards: 6,
            routing: RoutingDiscipline::Faithful,
        }
    }
}

/// The fixed world one cluster simulation runs in. The fault-free twin
/// and the per-shard standalone replays depend only on the world (node
/// events never touch them), so both are computed once at build time
/// and shared by every case and shrink candidate.
#[derive(Debug)]
pub struct ClusterWorld {
    norm: NormalizedInstance,
    lca: LcaKp,
    shared_seed: Seed,
    service_root: Seed,
    cluster: ClusterConfig,
    twin: ClusterReport,
    horizon: u64,
    standalone: Vec<Vec<QueryOutcome>>,
}

/// Headline counters of one faulted cluster run (rendered into the
/// smoke JSON).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClusterCaseStats {
    /// Queries answered (any tier).
    pub answered: usize,
    /// Queries shed with a typed reason.
    pub shed: usize,
    /// Node crashes that actually fired.
    pub node_crashes: usize,
    /// Shard ownership changes survived via journal shipping.
    pub failovers: usize,
}

/// One simulated cluster case: its schedule, run counters, violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterCaseResult {
    /// The case number (schedule seed index).
    pub case: u64,
    /// The generated node-level schedule.
    pub events: Vec<SimEvent>,
    /// Counters of the faulted run.
    pub stats: ClusterCaseStats,
    /// Invariant violations (empty = the case passed).
    pub violations: Vec<Violation>,
}

/// Everything [`run_cluster_range`] learned: per-case results plus the
/// first violation's shrunk repro.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterSimReport {
    /// One entry per case, in case order.
    pub cases: Vec<ClusterCaseResult>,
    /// Shrunk repro of the first violating case, if any violated.
    pub repro: Option<Repro>,
}

impl ClusterSimReport {
    /// Total violations across the range.
    pub fn total_violations(&self) -> usize {
        self.cases.iter().map(|case| case.violations.len()).sum()
    }
}

impl ClusterWorld {
    /// Builds the world for `root`: the same dominated instance family
    /// and tuning as the E15 [`SimWorld`](crate::SimWorld) — under
    /// cluster-specific domain labels, so the two simulators' random
    /// streams stay independent — with the worker pool replaced by a
    /// simulated cluster.
    ///
    /// # Errors
    ///
    /// Propagates workload generation and LCA construction errors.
    pub fn build(root: &Seed, config: &ClusterSimConfig) -> Result<ClusterWorld, LcaError> {
        let workload_seed = seed_to_u64(&root.derive("sim/cluster-workload", 0));
        let norm = WorkloadSpec::new(Family::SmallDominated, config.n, workload_seed)
            .generate_normalized()
            .map_err(LcaError::from)?;
        let lca =
            LcaKp::new(Epsilon::new(1, 3)?)?.with_budget(SampleBudget::Calibrated { factor: 0.01 });
        let cluster = ClusterConfig {
            nodes: config.nodes,
            replication: config.replication,
            shards: config.shards,
            routing: config.routing,
            base: ServiceConfig {
                workers: 1,
                queue_depth: config.n.max(1),
                breaker: BreakerConfig {
                    failure_threshold: 2,
                    cooldown_ticks: 6,
                    half_open_probes: 1,
                },
                ..ServiceConfig::default()
            },
            ..ClusterConfig::default()
        };
        let shared_seed = root.derive("sim/cluster-shared", 0);
        let service_root = root.derive("sim/cluster-serving", 0);
        let batch: Vec<ItemId> = (0..norm.len()).map(ItemId).collect();
        let oracle = InstanceOracle::new(&norm);
        let twin = serve_cluster(
            &lca,
            &oracle,
            &shared_seed,
            &service_root,
            &batch,
            &cluster,
            None,
            &[],
        )?;
        let horizon = twin
            .shards
            .iter()
            .map(|trace| trace.end_tick)
            .max()
            .unwrap_or(0)
            .max(1);
        let standalone = (0..cluster.shards)
            .map(|shard| {
                serve_shard_standalone(
                    &lca,
                    &oracle,
                    &shared_seed,
                    &service_root,
                    &batch,
                    shard,
                    &cluster,
                )
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ClusterWorld {
            norm,
            lca,
            shared_seed,
            service_root,
            cluster,
            twin,
            horizon,
            standalone,
        })
    }

    /// Runs one node-level schedule against the precomputed fault-free
    /// twin: maps permille ticks onto the twin's horizon, runs the
    /// faulted cluster, then checks every cluster invariant including
    /// replica byte-identity.
    ///
    /// # Errors
    ///
    /// Propagates hard configuration errors from [`serve_cluster`].
    pub fn run_schedule(
        &self,
        events: &[SimEvent],
    ) -> Result<(ClusterCaseStats, Vec<Violation>), LcaError> {
        let batch: Vec<ItemId> = (0..self.norm.len()).map(ItemId).collect();
        let oracle = InstanceOracle::new(&self.norm);
        let node_events = map_node_events(events, self.horizon, self.cluster.nodes);
        let faulted = serve_cluster(
            &self.lca,
            &oracle,
            &self.shared_seed,
            &self.service_root,
            &batch,
            &self.cluster,
            None,
            &node_events,
        )?;
        let mut violations = check_cluster_run(&self.twin, &faulted, batch.len());
        violations.extend(self.replica_mismatches(&faulted));
        let stats = ClusterCaseStats {
            answered: faulted.answered_count(),
            shed: faulted.shed_count(),
            node_crashes: faulted.nodes.iter().map(|trace| trace.crashes).sum(),
            failovers: faulted.failover_count(),
        };
        Ok((stats, violations))
    }

    /// The replica byte-identity check: every shard's precomputed
    /// standalone replay — what each replica computes from the shared
    /// seeds alone — must match every answer the faulted cluster
    /// acknowledged byte-for-byte. A mismatch is reported against each
    /// surviving replica of the shard's boot-time group.
    fn replica_mismatches(&self, faulted: &ClusterReport) -> Vec<Violation> {
        let mut violations = Vec::new();
        let ring = Ring::new(self.cluster.nodes, self.cluster.vnodes);
        for (shard, standalone) in self.standalone.iter().enumerate() {
            let set = ring
                .replicas(shard, self.cluster.replication)
                .expect("a non-empty membership always routes");
            let alive: Vec<NodeId> = set
                .nodes()
                .iter()
                .copied()
                .filter(|node| {
                    faulted
                        .nodes
                        .get(node.0)
                        .is_some_and(|trace| trace.alive_at_end)
                })
                .collect();
            if alive.is_empty() {
                continue;
            }
            let reference: BTreeMap<usize, &Disposition> = standalone
                .iter()
                .map(|outcome| (outcome.index, &outcome.disposition))
                .collect();
            let mismatch = faulted.outcomes.iter().any(|outcome| {
                outcome.index % self.cluster.shards == shard
                    && outcome.disposition.answered().is_some()
                    && reference.get(&outcome.index) != Some(&&outcome.disposition)
            });
            if mismatch {
                for node in alive {
                    violations.push(Violation::ReplicaAnswerMismatch {
                        shard,
                        node: node.0,
                    });
                }
            }
        }
        violations
    }

    /// Convenience for shrink loops: violations only, with hard errors
    /// treated as "no violation" (a schedule that cannot even run is
    /// not a smaller repro of an invariant break).
    pub fn violations_for(&self, events: &[SimEvent]) -> Vec<Violation> {
        self.run_schedule(events)
            .map(|(_, violations)| violations)
            .unwrap_or_default()
    }
}

/// Turns the schedule's permille ticks into absolute [`NodeEvent`]s on
/// the twin's cluster horizon. Events naming a node the membership
/// doesn't have, worker-level E15 events, and degenerate partitions
/// (cutting nobody or everybody) are dropped — shrunk or hand-written
/// schedules may contain them.
pub(crate) fn map_node_events(events: &[SimEvent], horizon: u64, nodes: usize) -> Vec<NodeEvent> {
    let at = |permille: u32| horizon * u64::from(permille) / 1000;
    let mut mapped = Vec::new();
    for event in events {
        match *event {
            SimEvent::NodeCrash {
                node,
                tick_permille,
                torn_keep,
            } if node < nodes => {
                mapped.push(NodeEvent::NodeCrash {
                    node: NodeId(node),
                    at_tick: at(tick_permille),
                    torn_keep,
                });
            }
            SimEvent::NodeRestart {
                node,
                tick_permille,
            } if node < nodes => {
                mapped.push(NodeEvent::NodeRestart {
                    node: NodeId(node),
                    at_tick: at(tick_permille),
                });
            }
            SimEvent::Partition {
                cut_mask,
                from_permille,
                heal_permille,
            } => {
                // Nodes absent from every group stay on the client's
                // side, so a single far-side group encodes the cut.
                let cut: Vec<NodeId> = (0..nodes.min(32))
                    .filter(|&node| cut_mask & (1 << node) != 0)
                    .map(NodeId)
                    .collect();
                if cut.is_empty() || cut.len() == nodes {
                    continue;
                }
                mapped.push(NodeEvent::Partition {
                    groups: vec![cut],
                    at_tick: at(from_permille),
                    heal_at: heal_permille.map_or(u64::MAX, at),
                });
            }
            _ => {}
        }
    }
    mapped
}

/// Runs the cases in `range` against one cluster world, shrinking the
/// first violating schedule (if any) to a minimal repro.
///
/// # Errors
///
/// Propagates world construction and [`serve_cluster`] errors.
pub fn run_cluster_range(
    root: &Seed,
    config: &ClusterSimConfig,
    range: Range<u64>,
) -> Result<ClusterSimReport, LcaError> {
    let world = ClusterWorld::build(root, config)?;
    let mut cases = Vec::new();
    let mut repro = None;
    for case in range {
        let events = generate_cluster_schedule(root, case, config.nodes);
        let (stats, violations) = world.run_schedule(&events)?;
        if !violations.is_empty() && repro.is_none() {
            let shrunk = shrink(&events, |candidate| world.violations_for(candidate));
            repro = Some(Repro { case, shrunk });
        }
        cases.push(ClusterCaseResult {
            case,
            events,
            stats,
            violations,
        });
    }
    Ok(ClusterSimReport { cases, repro })
}

/// Renders a cluster range report as canonical JSON: fixed field
/// order, no floats, no ambient state — two runs with the same root
/// must be byte-identical. This is what the `e16_cluster --smoke`
/// golden pins.
#[must_use]
pub fn render_cluster_json(
    label: &str,
    config: &ClusterSimConfig,
    report: &ClusterSimReport,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"label\": \"{label}\",");
    let _ = writeln!(out, "  \"n\": {},", config.n);
    let _ = writeln!(out, "  \"nodes\": {},", config.nodes);
    let _ = writeln!(out, "  \"replication\": {},", config.replication);
    let _ = writeln!(out, "  \"shards\": {},", config.shards);
    let _ = writeln!(out, "  \"routing\": \"{}\",", config.routing);
    let _ = writeln!(out, "  \"cases\": [");
    for (position, case) in report.cases.iter().enumerate() {
        let events: Vec<String> = case
            .events
            .iter()
            .map(|event| format!("\"{event}\""))
            .collect();
        let violations: Vec<String> = case
            .violations
            .iter()
            .map(|violation| format!("\"{violation}\""))
            .collect();
        let comma = if position + 1 < report.cases.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"case\": {}, \"events\": [{}], \"answered\": {}, \"shed\": {}, \
             \"node_crashes\": {}, \"failovers\": {}, \"violations\": [{}]}}{comma}",
            case.case,
            events.join(", "),
            case.stats.answered,
            case.stats.shed,
            case.stats.node_crashes,
            case.stats.failovers,
            violations.join(", "),
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"total_violations\": {},",
        report.total_violations()
    );
    let _ = writeln!(
        out,
        "  \"repro\": {}",
        report.repro.as_ref().map_or_else(
            || "null".to_string(),
            |repro| format!(
                "{{\"case\": {}, \"events\": {}}}",
                repro.case,
                repro.shrunk.events.len()
            )
        )
    );
    let _ = write!(out, "}}");
    out
}

/// Cases the smoke run covers (CI diffs its JSON against the golden).
pub const E16_SMOKE_CASES: u64 = 5;

/// Runs the committed smoke range for the `e16_cluster --smoke` bin
/// and the golden test: [`E16_SMOKE_CASES`] cases under faithful
/// routing.
///
/// # Errors
///
/// Propagates [`run_cluster_range`] errors.
pub fn run_cluster_smoke(root: &Seed) -> Result<String, LcaError> {
    let config = ClusterSimConfig::default();
    let report = run_cluster_range(root, &config, 0..E16_SMOKE_CASES)?;
    Ok(render_cluster_json("e16-smoke", &config, &report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_events_map_onto_the_horizon_and_drop_degenerates() {
        let events = [
            SimEvent::NodeCrash {
                node: 1,
                tick_permille: 500,
                torn_keep: Some(9),
            },
            SimEvent::NodeRestart {
                node: 7,
                tick_permille: 600,
            },
            SimEvent::Partition {
                cut_mask: 0b0110,
                from_permille: 250,
                heal_permille: None,
            },
            SimEvent::Partition {
                cut_mask: 0b1111,
                from_permille: 100,
                heal_permille: Some(200),
            },
            SimEvent::Crash {
                worker: 0,
                tick_permille: 10,
                torn_keep: None,
            },
        ];
        let mapped = map_node_events(&events, 1000, 4);
        assert_eq!(
            mapped,
            vec![
                NodeEvent::NodeCrash {
                    node: NodeId(1),
                    at_tick: 500,
                    torn_keep: Some(9),
                },
                NodeEvent::Partition {
                    groups: vec![vec![NodeId(1), NodeId(2)]],
                    at_tick: 250,
                    heal_at: u64::MAX,
                },
            ]
        );
    }

    #[test]
    fn cluster_schedules_always_contain_a_node_crash() {
        let root = Seed::from_entropy_u64(11);
        for case in 0..32 {
            let events = generate_cluster_schedule(&root, case, 4);
            assert_eq!(events, generate_cluster_schedule(&root, case, 4));
            assert!(
                events.iter().any(|event| matches!(
                    event,
                    SimEvent::NodeCrash { node, .. } if *node < 4
                )),
                "case {case} has no node crash: {events:?}"
            );
        }
    }
}
