//! Seed-derived fault schedules.
//!
//! A schedule is an ordered list of [`SimEvent`]s — the *entire*
//! difference between one simulated world and another. Schedules are a
//! pure function of `(root, case)`, so any case the simulator flags can
//! be replayed from its number alone, and any *shrunk* schedule can be
//! replayed from its printed event list (each event renders and reads
//! back losslessly through `Display`).

use lcakp_oracle::Seed;
use lcakp_service::TrafficShape;
use rand::Rng;
use std::fmt;

/// One injected fault. Crash ticks are expressed in *permille of the
/// crash-free run's final worker tick* rather than absolute ticks, so a
/// schedule stays meaningful across instances of different sizes and
/// shrinking a crash tick moves the crash earlier proportionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// Kill a worker partway through its shard, optionally tearing the
    /// in-flight journal write to its first `torn_keep` bytes.
    Crash {
        /// The worker to kill.
        worker: usize,
        /// Crash tick as permille of the worker's crash-free end tick.
        tick_permille: u32,
        /// Surviving bytes of the in-flight journal write (`None`:
        /// crash between writes).
        torn_keep: Option<usize>,
    },
    /// Revive a worker after its earliest unrevived crash.
    Restart {
        /// The worker to revive.
        worker: usize,
    },
    /// Periodic heavy-fault windows over batch positions.
    CorruptionBurst {
        /// A burst starts every `period` queries.
        period: usize,
        /// Queries per burst.
        len: usize,
        /// Transient-fault rate inside the burst, in permille.
        transient_permille: u32,
        /// Signalled-corruption rate inside the burst, in permille.
        corruption_permille: u32,
    },
    /// A latency surge over a virtual-tick window.
    LatencySpike {
        /// First tick (inclusive) of the surge.
        start_tick: u64,
        /// Window length in ticks.
        len_ticks: u64,
        /// Extra ticks charged per access started inside the window.
        extra_cost: u64,
    },
    /// A hard per-worker access cap barely above the admission bound.
    BudgetSqueeze {
        /// Slack above one worst-case query, in accesses.
        slack_accesses: u64,
    },
    /// Kill a whole cluster node (E16): every shard it hosts fails over
    /// to a replica via the shipped journal. Ticks are permille of the
    /// fault-free cluster horizon (the max shard end tick).
    NodeCrash {
        /// The node to kill.
        node: usize,
        /// Crash tick as permille of the fault-free cluster horizon.
        tick_permille: u32,
        /// Surviving bytes of each owned shard's last in-flight journal
        /// append (`None`: the journal ships clean).
        torn_keep: Option<usize>,
    },
    /// Revive a dead cluster node (E16). A restart halved below its
    /// crash tick fires while the node is alive and becomes a no-op —
    /// the schedule then reads as an unrevived crash.
    NodeRestart {
        /// The node to revive.
        node: usize,
        /// Restart tick as permille of the fault-free cluster horizon.
        tick_permille: u32,
    },
    /// Cut a set of cluster nodes off from the client's side (E16).
    Partition {
        /// Bitmask of the nodes on the far side of the cut (bit `i` =
        /// node `i`); bits beyond the membership are ignored.
        cut_mask: u32,
        /// Cut tick as permille of the fault-free cluster horizon.
        from_permille: u32,
        /// Heal tick in permille (`None`: never heals in this batch).
        heal_permille: Option<u32>,
    },
    /// The offered open-loop traffic of an E17 case. The gap is
    /// permille of the world's *measured per-query service cost*, so
    /// 1000 means arrivals at exactly one server's capacity and the
    /// schedule stays meaningful across instance sizes.
    Traffic {
        /// The arrival process.
        shape: TrafficShape,
        /// Mean inter-arrival gap as permille of the measured
        /// per-query service cost.
        gap_permille: u32,
    },
    /// An overload surge inside an E17 trace: arrivals in the window
    /// (permille of the trace horizon) come `gap_div`× as fast.
    OverloadSurge {
        /// First tick of the surge, permille of the trace horizon.
        start_permille: u32,
        /// Window length, permille of the trace horizon.
        len_permille: u32,
        /// Gap divisor inside the window (≥ 2 to mean anything).
        gap_div: u32,
    },
}

impl fmt::Display for SimEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimEvent::Crash {
                worker,
                tick_permille,
                torn_keep,
            } => match torn_keep {
                Some(keep) => write!(
                    f,
                    "crash(worker={worker}, tick={tick_permille}/1000, torn-keep={keep})"
                ),
                None => write!(f, "crash(worker={worker}, tick={tick_permille}/1000)"),
            },
            SimEvent::Restart { worker } => write!(f, "restart(worker={worker})"),
            SimEvent::CorruptionBurst {
                period,
                len,
                transient_permille,
                corruption_permille,
            } => write!(
                f,
                "corruption-burst(period={period}, len={len}, transient={transient_permille}/1000, \
                 corruption={corruption_permille}/1000)"
            ),
            SimEvent::LatencySpike {
                start_tick,
                len_ticks,
                extra_cost,
            } => write!(
                f,
                "latency-spike(start={start_tick}, len={len_ticks}, extra={extra_cost})"
            ),
            SimEvent::BudgetSqueeze { slack_accesses } => {
                write!(f, "budget-squeeze(slack={slack_accesses})")
            }
            SimEvent::NodeCrash {
                node,
                tick_permille,
                torn_keep,
            } => match torn_keep {
                Some(keep) => write!(
                    f,
                    "node-crash(node={node}, tick={tick_permille}/1000, torn-keep={keep})"
                ),
                None => write!(f, "node-crash(node={node}, tick={tick_permille}/1000)"),
            },
            SimEvent::NodeRestart {
                node,
                tick_permille,
            } => {
                write!(f, "node-restart(node={node}, tick={tick_permille}/1000)")
            }
            SimEvent::Partition {
                cut_mask,
                from_permille,
                heal_permille,
            } => {
                write!(
                    f,
                    "partition(cut=0b{cut_mask:b}, from={from_permille}/1000, heal="
                )?;
                match heal_permille {
                    Some(heal) => write!(f, "{heal}/1000)"),
                    None => write!(f, "never)"),
                }
            }
            SimEvent::Traffic {
                shape,
                gap_permille,
            } => {
                write!(f, "traffic(shape={shape}, gap={gap_permille}/1000)")
            }
            SimEvent::OverloadSurge {
                start_permille,
                len_permille,
                gap_div,
            } => {
                write!(
                    f,
                    "overload-surge(start={start_permille}/1000, len={len_permille}/1000, \
                     div={gap_div})"
                )
            }
        }
    }
}

/// Generates the fault schedule for `case`: always at least one crash
/// (most get a matching restart), plus up to two ambient faults drawn
/// from corruption bursts, latency spikes, and budget squeezes.
pub fn generate_schedule(root: &Seed, case: u64, workers: usize) -> Vec<SimEvent> {
    let mut rng = root.derive("sim/schedule", case).rng();
    let mut events = Vec::new();
    let crashes = rng.gen_range(1usize..=2);
    for _ in 0..crashes {
        let worker = rng.gen_range(0..workers);
        let torn_keep = if rng.gen_range(0u32..2) == 0 {
            Some(rng.gen_range(0usize..64))
        } else {
            None
        };
        events.push(SimEvent::Crash {
            worker,
            tick_permille: rng.gen_range(0u32..1000),
            torn_keep,
        });
        // Most crashes get revived; the rest leave a dead worker whose
        // shard tail must shed explicitly.
        if rng.gen_range(0u32..10) < 7 {
            events.push(SimEvent::Restart { worker });
        }
    }
    for _ in 0..rng.gen_range(0usize..=2) {
        events.push(match rng.gen_range(0u32..3) {
            0 => SimEvent::CorruptionBurst {
                period: rng.gen_range(8usize..24),
                len: rng.gen_range(2usize..8),
                transient_permille: rng.gen_range(50u32..400),
                corruption_permille: rng.gen_range(0u32..80),
            },
            1 => SimEvent::LatencySpike {
                start_tick: rng.gen_range(0u64..40_000),
                len_ticks: rng.gen_range(1_000u64..20_000),
                extra_cost: rng.gen_range(1u64..4),
            },
            _ => SimEvent::BudgetSqueeze {
                slack_accesses: rng.gen_range(0u64..200_000),
            },
        });
    }
    events
}

/// Generates the node-level fault schedule for a cluster `case`:
/// always at least one node crash (most get a matching restart), and
/// half the cases add a partition (most of which heal). Node 0 is never
/// cut off — it anchors the client's side of every partition.
pub fn generate_cluster_schedule(root: &Seed, case: u64, nodes: usize) -> Vec<SimEvent> {
    let mut rng = root.derive("sim/cluster-schedule", case).rng();
    let mut events = Vec::new();
    let crashes = rng.gen_range(1usize..=2);
    for _ in 0..crashes {
        let node = rng.gen_range(0..nodes);
        let torn_keep = if rng.gen_range(0u32..2) == 0 {
            Some(rng.gen_range(0usize..96))
        } else {
            None
        };
        let tick_permille = rng.gen_range(0u32..900);
        events.push(SimEvent::NodeCrash {
            node,
            tick_permille,
            torn_keep,
        });
        // Most dead nodes come back; the rest stay down so their shards
        // must live on replicas (or shed explicitly).
        if rng.gen_range(0u32..10) < 7 {
            events.push(SimEvent::NodeRestart {
                node,
                tick_permille: tick_permille.saturating_add(rng.gen_range(50u32..250)),
            });
        }
    }
    if nodes > 1 && rng.gen_range(0u32..10) < 5 {
        let cut_mask = rng.gen_range(1u32..(1 << (nodes - 1))) << 1;
        let from_permille = rng.gen_range(0u32..700);
        let heal_permille = if rng.gen_range(0u32..10) < 7 {
            Some(from_permille.saturating_add(rng.gen_range(100u32..300)))
        } else {
            None
        };
        events.push(SimEvent::Partition {
            cut_mask,
            from_permille,
            heal_permille,
        });
    }
    events
}

/// Generates the traffic schedule for an E17 `case`: exactly one
/// [`SimEvent::Traffic`] event whose shape cycles through all five
/// arrival processes (so any ten consecutive cases cover every shape
/// twice), plus — in half the cases — an [`SimEvent::OverloadSurge`]
/// that pushes the offered load past capacity for part of the trace.
pub fn generate_slo_schedule(root: &Seed, case: u64) -> Vec<SimEvent> {
    let mut rng = root.derive("sim/slo-schedule", case).rng();
    let shape = TrafficShape::ALL[(case % TrafficShape::ALL.len() as u64) as usize];
    let mut events = vec![SimEvent::Traffic {
        shape,
        gap_permille: rng.gen_range(900u32..2200),
    }];
    if rng.gen_range(0u32..10) < 5 {
        events.push(SimEvent::OverloadSurge {
            start_permille: rng.gen_range(100u32..500),
            len_permille: rng.gen_range(150u32..400),
            gap_div: rng.gen_range(3u32..6),
        });
    }
    events
}

/// The traffic shapes an E18 rebalance case cycles through: the three
/// that concentrate load — a hot shard, bursty arrivals, and a query of
/// death — because those are the regimes where promoting a replica can
/// actually relieve anything.
const REBALANCE_SHAPES: [TrafficShape; 3] = [
    TrafficShape::HotShard,
    TrafficShape::Bursty,
    TrafficShape::QueryOfDeath,
];

/// Generates the combined traffic-and-fault schedule for an E18
/// rebalance `case`: exactly one [`SimEvent::Traffic`] event cycling
/// through the load-concentrating shapes at overload-leaning gaps, plus
/// — independently — an overload surge (~40%), a node crash with a
/// likely restart (~50%), and a partition (~40%). Node 0 is never cut
/// off — it anchors the client's side of every partition.
pub fn generate_rebalance_schedule(root: &Seed, case: u64, nodes: usize) -> Vec<SimEvent> {
    let mut rng = root.derive("sim/rebalance-schedule", case).rng();
    let shape = REBALANCE_SHAPES[(case % REBALANCE_SHAPES.len() as u64) as usize];
    let mut events = vec![SimEvent::Traffic {
        shape,
        gap_permille: rng.gen_range(500u32..1400),
    }];
    if rng.gen_range(0u32..10) < 4 {
        events.push(SimEvent::OverloadSurge {
            start_permille: rng.gen_range(100u32..500),
            len_permille: rng.gen_range(150u32..400),
            gap_div: rng.gen_range(2u32..5),
        });
    }
    if rng.gen_range(0u32..10) < 5 {
        let node = rng.gen_range(0..nodes);
        let torn_keep = if rng.gen_range(0u32..2) == 0 {
            Some(rng.gen_range(0usize..96))
        } else {
            None
        };
        let tick_permille = rng.gen_range(100u32..800);
        events.push(SimEvent::NodeCrash {
            node,
            tick_permille,
            torn_keep,
        });
        if rng.gen_range(0u32..10) < 7 {
            events.push(SimEvent::NodeRestart {
                node,
                tick_permille: tick_permille.saturating_add(rng.gen_range(50u32..250)),
            });
        }
    }
    if nodes > 1 && rng.gen_range(0u32..10) < 4 {
        let cut_mask = rng.gen_range(1u32..(1 << (nodes - 1))) << 1;
        let from_permille = rng.gen_range(0u32..600);
        let heal_permille = if rng.gen_range(0u32..10) < 7 {
            Some(from_permille.saturating_add(rng.gen_range(100u32..300)))
        } else {
            None
        };
        events.push(SimEvent::Partition {
            cut_mask,
            from_permille,
            heal_permille,
        });
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_a_pure_function_of_root_and_case() {
        let root = Seed::from_entropy_u64(7);
        for case in 0..32 {
            assert_eq!(
                generate_schedule(&root, case, 3),
                generate_schedule(&root, case, 3),
                "case {case}"
            );
        }
    }

    #[test]
    fn every_schedule_contains_a_crash_with_a_valid_worker() {
        let root = Seed::from_entropy_u64(8);
        for case in 0..64 {
            let events = generate_schedule(&root, case, 3);
            assert!(
                events.iter().any(|event| matches!(
                    event,
                    SimEvent::Crash { worker, .. } if *worker < 3
                )),
                "case {case} has no crash: {events:?}"
            );
        }
    }

    #[test]
    fn display_is_stable_and_distinct_per_variant() {
        let rendered = [
            SimEvent::Crash {
                worker: 1,
                tick_permille: 512,
                torn_keep: Some(9),
            },
            SimEvent::Restart { worker: 1 },
            SimEvent::CorruptionBurst {
                period: 16,
                len: 4,
                transient_permille: 300,
                corruption_permille: 50,
            },
            SimEvent::LatencySpike {
                start_tick: 100,
                len_ticks: 50,
                extra_cost: 2,
            },
            SimEvent::BudgetSqueeze { slack_accesses: 77 },
            SimEvent::Traffic {
                shape: TrafficShape::Bursty,
                gap_permille: 1200,
            },
            SimEvent::OverloadSurge {
                start_permille: 300,
                len_permille: 200,
                gap_div: 4,
            },
        ]
        .map(|event| event.to_string());
        assert_eq!(rendered[0], "crash(worker=1, tick=512/1000, torn-keep=9)");
        assert_eq!(rendered[1], "restart(worker=1)");
        assert_eq!(rendered[5], "traffic(shape=bursty, gap=1200/1000)");
        assert_eq!(
            rendered[6],
            "overload-surge(start=300/1000, len=200/1000, div=4)"
        );
        let unique: std::collections::BTreeSet<&String> = rendered.iter().collect();
        assert_eq!(unique.len(), rendered.len());
    }

    #[test]
    fn rebalance_schedules_carry_load_concentrating_traffic() {
        let root = Seed::from_entropy_u64(13);
        let mut shapes = std::collections::BTreeSet::new();
        for case in 0..12 {
            let events = generate_rebalance_schedule(&root, case, 3);
            assert_eq!(events, generate_rebalance_schedule(&root, case, 3));
            let traffic: Vec<&SimEvent> = events
                .iter()
                .filter(|event| matches!(event, SimEvent::Traffic { .. }))
                .collect();
            assert_eq!(traffic.len(), 1, "case {case}: {events:?}");
            if let SimEvent::Traffic { shape, .. } = traffic[0] {
                assert!(
                    REBALANCE_SHAPES.contains(shape),
                    "case {case} drew a non-concentrating shape: {shape}"
                );
                shapes.insert(shape.to_string());
            }
        }
        assert_eq!(shapes.len(), REBALANCE_SHAPES.len());
    }

    #[test]
    fn slo_schedules_cover_every_shape_and_always_carry_traffic() {
        let root = Seed::from_entropy_u64(12);
        let mut shapes = std::collections::BTreeSet::new();
        for case in 0..10 {
            let events = generate_slo_schedule(&root, case);
            assert_eq!(events, generate_slo_schedule(&root, case));
            let traffic: Vec<&SimEvent> = events
                .iter()
                .filter(|event| matches!(event, SimEvent::Traffic { .. }))
                .collect();
            assert_eq!(traffic.len(), 1, "case {case}: {events:?}");
            if let SimEvent::Traffic { shape, .. } = traffic[0] {
                shapes.insert(shape.to_string());
            }
        }
        assert_eq!(shapes.len(), TrafficShape::ALL.len());
    }
}
