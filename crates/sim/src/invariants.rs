//! The safety and liveness invariants the simulator checks.
//!
//! Every check compares the faulted run against its *crash-free twin* —
//! the same world and the same schedule minus crash/restart events — or
//! inspects the faulted run's write-ahead journals directly:
//!
//! * **crash transparency** — every outcome equals the twin's, except
//!   that a query owned by an unrevived dead worker may shed as
//!   [`ShedReason::WorkerCrashed`];
//! * **liveness** — every submitted query terminates in exactly one
//!   outcome (answer or typed shed), none silently dropped;
//! * **no conflicting double-serve** — a journal may record the same
//!   index twice (a torn snapshot forces a re-execution), but every
//!   record for one index must be byte-identical;
//! * **write-ahead discipline** — an answer the runtime acknowledged
//!   must appear in its worker's journal;
//! * **journal integrity** — journals decode cleanly (recovery
//!   truncates torn tails; only an unrevived final crash may leave one)
//!   and snapshots are monotone in `(tick, next_position)`.
//!
//! [`check_cluster_run`] applies the same discipline to E16 cluster
//! runs — there the per-task journals belong to *shards* (which survive
//! node failover by journal shipping), the tolerated sheds widen to the
//! cluster-level reasons, and two cluster-only invariants join: a shed
//! while a live replica was reachable is a routing bug, and surviving
//! replicas must agree byte-for-byte on every answer.
//!
//! [`check_rebalance_run`] covers the E18 traffic-driven cluster: every
//! promotion must be justified by its own audit trail (rebalance
//! honesty), bounded per shard per window (no ping-pong), and strictly
//! epoch-increasing; stale-epoch sheds and epoch-losing recoveries are
//! always violations.

use lcakp_service::{
    AdmissionConfig, BatchReport, ClusterReport, ClusterTrafficReport, DecodeMode, Disposition,
    Journal, JournalRecord, OpenLoopReport, QueryOutcome, RebalanceConfig, RecoveryError,
    RingEpoch, ShedReason, TrafficDisposition,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One invariant violation, addressable enough to debug from the
/// rendered repro alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// The faulted outcome differs from the crash-free twin's (and is
    /// not a `WorkerCrashed` shed of a dead worker's query).
    OutcomeDiverged {
        /// Batch position of the diverging query.
        index: usize,
    },
    /// A submitted query has no outcome at all — silently dropped.
    MissingOutcome {
        /// Batch position of the dropped query.
        index: usize,
    },
    /// A batch position appears in more than one outcome.
    DuplicateOutcome {
        /// The duplicated batch position.
        index: usize,
    },
    /// An acknowledged answer is absent from its worker's journal.
    UnjournaledAnswer {
        /// The worker that served the answer.
        worker: usize,
        /// Batch position of the unjournaled answer.
        index: usize,
    },
    /// The same index was journaled twice with different bytes.
    ConflictingJournalRecords {
        /// The worker whose journal conflicts.
        worker: usize,
        /// The conflicting batch position.
        index: usize,
    },
    /// Snapshot ticks or positions went backwards within one journal.
    JournalNotMonotone {
        /// The worker whose journal regressed.
        worker: usize,
    },
    /// A journal failed to decode even in recovery mode.
    JournalCorrupt {
        /// The worker whose journal is unreadable.
        worker: usize,
        /// The decoder's typed error.
        error: RecoveryError,
    },
    /// A surviving replica's standalone replay of a shard disagrees
    /// with the answer the cluster acknowledged.
    ReplicaAnswerMismatch {
        /// The shard whose replicas disagree.
        shard: usize,
        /// The disagreeing replica node.
        node: usize,
    },
    /// A query was shed for a cluster-level reason while the router had
    /// a live, reachable replica it should have promoted instead.
    ShedWithLiveReplica {
        /// The shard that shed.
        shard: usize,
        /// Batch position of the first wrongly shed query.
        index: usize,
    },
    /// Admission honesty (E17): an `Overload` shed whose recorded load
    /// signal was below every threshold that could have justified it.
    DishonestShed {
        /// Trace position of the dishonestly shed arrival.
        index: usize,
    },
    /// Hysteresis (E17): one shard's admission controller flipped state
    /// twice within the hysteresis window — the signature of the
    /// planted non-hysteretic controller.
    AdmissionFlap {
        /// The flapping shard.
        shard: usize,
        /// Ticks between the two flips (below the hysteresis window).
        gap_ticks: u64,
    },
    /// Liveness (E17): the offered load sat below capacity (the
    /// admission-free twin never queued past the exit threshold nor
    /// missed a deadline), yet the controller shed with `Overload`.
    OverloadShedUnderCapacity {
        /// Trace position of the needlessly shed arrival.
        index: usize,
    },
    /// Rebalance honesty (E18): a promotion whose recorded source
    /// signal was calm, or whose target was dead or already at the busy
    /// bound — the controller may never cite a justification the audit
    /// trail contradicts.
    UnjustifiedPromotion {
        /// The wrongly promoted shard.
        shard: usize,
        /// The promotion's virtual tick.
        at_tick: u64,
    },
    /// No ping-pong (E18): one shard was promoted more often inside a
    /// rebalance window than the dual-hysteresis bound allows.
    PromotionPingPong {
        /// The oscillating shard.
        shard: usize,
        /// Promotions observed inside one window.
        promotions: u32,
    },
    /// Ring-epoch monotonicity (E18): a promotion failed to strictly
    /// increase the ring epoch.
    EpochNotMonotone {
        /// The offending epoch value.
        epoch: u64,
    },
    /// Stale-epoch routing (E18): an arrival shed with
    /// [`ShedReason::StaleRingEpoch`] — the signature of the planted
    /// stale-router bug (faithful routing never sheds on an epoch).
    StaleEpochShed {
        /// Trace position of the stale-shed arrival.
        index: usize,
    },
    /// Migration transparency (E18): an answer the cluster acknowledged
    /// for a (possibly migrated) shard diverged byte-for-byte from the
    /// shard's standalone replay of the same admitted subsequence.
    MigratedAnswerMismatch {
        /// The shard whose answers diverged.
        shard: usize,
        /// Trace position of the first diverging answer.
        index: usize,
    },
    /// Epoch replay (E18): a crashed node's surviving journals replayed
    /// an older ring epoch than the cluster had reached at crash time.
    EpochReplayMismatch {
        /// The node whose recovery lost the epoch.
        node: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::OutcomeDiverged { index } => {
                write!(f, "outcome-diverged(index={index})")
            }
            Violation::MissingOutcome { index } => {
                write!(f, "missing-outcome(index={index})")
            }
            Violation::DuplicateOutcome { index } => {
                write!(f, "duplicate-outcome(index={index})")
            }
            Violation::UnjournaledAnswer { worker, index } => {
                write!(f, "unjournaled-answer(worker={worker}, index={index})")
            }
            Violation::ConflictingJournalRecords { worker, index } => {
                write!(
                    f,
                    "conflicting-journal-records(worker={worker}, index={index})"
                )
            }
            Violation::JournalNotMonotone { worker } => {
                write!(f, "journal-not-monotone(worker={worker})")
            }
            Violation::JournalCorrupt { worker, error } => {
                write!(f, "journal-corrupt(worker={worker}, error={error})")
            }
            Violation::ReplicaAnswerMismatch { shard, node } => {
                write!(f, "replica-answer-mismatch(shard={shard}, node={node})")
            }
            Violation::ShedWithLiveReplica { shard, index } => {
                write!(f, "shed-with-live-replica(shard={shard}, index={index})")
            }
            Violation::DishonestShed { index } => {
                write!(f, "dishonest-shed(index={index})")
            }
            Violation::AdmissionFlap { shard, gap_ticks } => {
                write!(f, "admission-flap(shard={shard}, gap={gap_ticks})")
            }
            Violation::OverloadShedUnderCapacity { index } => {
                write!(f, "overload-shed-under-capacity(index={index})")
            }
            Violation::UnjustifiedPromotion { shard, at_tick } => {
                write!(f, "unjustified-promotion(shard={shard}, tick={at_tick})")
            }
            Violation::PromotionPingPong { shard, promotions } => {
                write!(
                    f,
                    "promotion-ping-pong(shard={shard}, promotions={promotions})"
                )
            }
            Violation::EpochNotMonotone { epoch } => {
                write!(f, "epoch-not-monotone(epoch={epoch})")
            }
            Violation::StaleEpochShed { index } => {
                write!(f, "stale-epoch-shed(index={index})")
            }
            Violation::MigratedAnswerMismatch { shard, index } => {
                write!(f, "migrated-answer-mismatch(shard={shard}, index={index})")
            }
            Violation::EpochReplayMismatch { node } => {
                write!(f, "epoch-replay-mismatch(node={node})")
            }
        }
    }
}

/// Checks every invariant of one faulted run against its crash-free
/// twin. `n` is the submitted batch size. Violations come back in a
/// deterministic order (coverage, divergence, then per-worker journal
/// checks).
pub fn check_run(twin: &BatchReport, faulted: &BatchReport, n: usize) -> Vec<Violation> {
    let mut violations = Vec::new();

    // Liveness: exactly one outcome per submitted index.
    let mut seen = BTreeSet::new();
    for outcome in &faulted.outcomes {
        if !seen.insert(outcome.index) {
            violations.push(Violation::DuplicateOutcome {
                index: outcome.index,
            });
        }
    }
    for index in 0..n {
        if !seen.contains(&index) {
            violations.push(Violation::MissingOutcome { index });
        }
    }

    // Crash transparency: outcomes equal the twin's, WorkerCrashed
    // sheds of dead workers excepted.
    let twin_by_index: BTreeMap<usize, &Disposition> = twin
        .outcomes
        .iter()
        .map(|outcome| (outcome.index, &outcome.disposition))
        .collect();
    for outcome in &faulted.outcomes {
        if matches!(
            outcome.disposition,
            Disposition::Shed(ShedReason::WorkerCrashed { .. })
        ) {
            continue;
        }
        if twin_by_index.get(&outcome.index) != Some(&&outcome.disposition) {
            violations.push(Violation::OutcomeDiverged {
                index: outcome.index,
            });
        }
    }

    // Per-worker journal checks on the faulted run.
    for trace in &faulted.workers {
        violations.extend(journal_violations(
            trace.worker,
            &trace.journal,
            &faulted.outcomes,
        ));
    }

    violations
}

/// The journal-discipline checks for one task's write-ahead journal
/// (`worker` is the task's id — a pool worker in E15, a shard in E16):
/// decodes cleanly, snapshots are monotone, records per index are
/// byte-identical, and every acknowledged answer owned by this task is
/// journaled.
fn journal_violations(
    worker: usize,
    journal: &Journal,
    outcomes: &[QueryOutcome],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    let decoded = match journal.decode(DecodeMode::Recover) {
        Ok(decoded) => decoded,
        Err(error) => {
            violations.push(Violation::JournalCorrupt { worker, error });
            return violations;
        }
    };
    let mut disposed: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut last_snapshot: Option<(u64, u64)> = None;
    for record in &decoded.records {
        match record {
            JournalRecord::Snapshot(snapshot) => {
                let key = (snapshot.tick, snapshot.next_position);
                if last_snapshot.is_some_and(|previous| {
                    snapshot.tick < previous.0 || snapshot.next_position < previous.1
                }) {
                    violations.push(Violation::JournalNotMonotone { worker });
                }
                last_snapshot = Some(key);
            }
            JournalRecord::Answered { index, .. } | JournalRecord::Shed { index, .. } => {
                let encoded = record.encode();
                let first = disposed.entry(*index).or_insert_with(|| encoded.clone());
                if *first != encoded {
                    violations.push(Violation::ConflictingJournalRecords {
                        worker,
                        index: *index as usize,
                    });
                }
            }
            JournalRecord::Admitted { .. } | JournalRecord::RingChange { .. } => {}
        }
    }
    // Write-ahead discipline: acknowledged answers must be journaled by
    // their owning task.
    for outcome in outcomes {
        let Some(answered) = outcome.disposition.answered() else {
            continue;
        };
        if answered.worker == worker && !disposed.contains_key(&(outcome.index as u64)) {
            violations.push(Violation::UnjournaledAnswer {
                worker,
                index: outcome.index,
            });
        }
    }
    violations
}

/// Whether a faulted-run shed is one the cluster twin-check tolerates:
/// the loss of every replica (or of the whole reachable side) is the
/// *only* sanctioned divergence from the fault-free twin.
fn cluster_tolerated(disposition: &Disposition) -> bool {
    matches!(
        disposition,
        Disposition::Shed(
            ShedReason::WorkerCrashed { .. }
                | ShedReason::NodeUnreachable { .. }
                | ShedReason::Partitioned { .. }
        )
    )
}

/// Checks every cluster invariant of one faulted E16 run against its
/// fault-free twin. `n` is the submitted batch size. On top of the
/// [`check_run`] discipline (liveness, divergence, per-shard journal
/// checks), the routing audit trail is inspected: any shed recorded
/// while a live replica was reachable becomes
/// [`Violation::ShedWithLiveReplica`] — the signature of the planted
/// stale-ring bug.
pub fn check_cluster_run(
    twin: &ClusterReport,
    faulted: &ClusterReport,
    n: usize,
) -> Vec<Violation> {
    let mut violations = Vec::new();

    // Liveness: exactly one outcome per submitted index — a partition
    // may shed a query, never silently drop it.
    let mut seen = BTreeSet::new();
    for outcome in &faulted.outcomes {
        if !seen.insert(outcome.index) {
            violations.push(Violation::DuplicateOutcome {
                index: outcome.index,
            });
        }
    }
    for index in 0..n {
        if !seen.contains(&index) {
            violations.push(Violation::MissingOutcome { index });
        }
    }

    // Failover transparency: outcomes equal the twin's, cluster-level
    // sheds of genuinely unreachable shards excepted.
    let twin_by_index: BTreeMap<usize, &Disposition> = twin
        .outcomes
        .iter()
        .map(|outcome| (outcome.index, &outcome.disposition))
        .collect();
    for outcome in &faulted.outcomes {
        if cluster_tolerated(&outcome.disposition) {
            continue;
        }
        if twin_by_index.get(&outcome.index) != Some(&&outcome.disposition) {
            violations.push(Violation::OutcomeDiverged {
                index: outcome.index,
            });
        }
    }

    // Routing honesty: a shed audit naming reachable replicas means the
    // router refused work it could have failed over.
    for audit in &faulted.shed_audits {
        if !audit.reachable_replicas.is_empty() {
            let index = faulted
                .outcomes
                .iter()
                .find(|outcome| {
                    matches!(
                        outcome.disposition,
                        Disposition::Shed(
                            ShedReason::NodeUnreachable { shard }
                                | ShedReason::Partitioned { shard }
                        ) if shard == audit.shard
                    )
                })
                .map_or(0, |outcome| outcome.index);
            violations.push(Violation::ShedWithLiveReplica {
                shard: audit.shard,
                index,
            });
        }
    }

    // Per-shard journal checks: the shipped journal that survived
    // failover must satisfy the same discipline as a pool worker's.
    for trace in &faulted.shards {
        violations.extend(journal_violations(
            trace.shard,
            &trace.journal,
            &faulted.outcomes,
        ));
    }

    violations
}

/// Checks the E17 open-loop invariants of one controlled run against
/// its admission-free twin (same trace, unbounded queue, nothing shed):
///
/// * **admission honesty** — every [`ShedReason::Overload`] carries a
///   load signal at or above an exit threshold (or the overloaded queue
///   bound): the controller may never blame a calm signal;
/// * **hysteresis** — no shard's controller flips state twice within
///   the configured hysteresis window;
/// * **liveness** — if the twin proves the offered load sat below
///   capacity (it never queued to the exit threshold and never missed a
///   deadline), the controller must not have shed a single arrival with
///   `Overload`.
pub fn check_slo_run(
    twin: &OpenLoopReport,
    controlled: &OpenLoopReport,
    admission: &AdmissionConfig,
) -> Vec<Violation> {
    let mut violations = Vec::new();

    // Admission honesty.
    for outcome in &controlled.outcomes {
        let TrafficDisposition::Shed(ShedReason::Overload { signal }) = outcome.disposition else {
            continue;
        };
        let justified = signal.queue_depth >= admission.exit_queue_depth
            || signal.deadline_miss_permille >= admission.exit_miss_permille
            || signal.queue_depth >= admission.queue_depth_overloaded;
        if !justified {
            violations.push(Violation::DishonestShed {
                index: outcome.index,
            });
        }
    }

    // Hysteresis: consecutive transitions per shard must be at least
    // the hysteresis window apart.
    let shards = controlled
        .transitions
        .iter()
        .map(|transition| transition.shard + 1)
        .max()
        .unwrap_or(0);
    for shard in 0..shards {
        let mut last: Option<u64> = None;
        for transition in controlled
            .transitions
            .iter()
            .filter(|transition| transition.shard == shard)
        {
            if let Some(previous) = last {
                let gap = transition.at_tick.saturating_sub(previous);
                if gap < admission.hysteresis_ticks {
                    violations.push(Violation::AdmissionFlap {
                        shard,
                        gap_ticks: gap,
                    });
                }
            }
            last = Some(transition.at_tick);
        }
    }

    // Liveness: under-capacity offered load must shed nothing.
    let under_capacity =
        twin.slo.deadline_missed == 0 && twin.max_queue_depth < admission.exit_queue_depth;
    if under_capacity {
        if let Some(outcome) = controlled.outcomes.iter().find(|outcome| {
            matches!(
                outcome.disposition,
                TrafficDisposition::Shed(ShedReason::Overload { .. })
            )
        }) {
            violations.push(Violation::OverloadShedUnderCapacity {
                index: outcome.index,
            });
        }
    }

    violations
}

/// Checks the E18 rebalance invariants of one traffic-driven cluster
/// run. `arrivals` is the offered trace length. The checks need no
/// twin — every one reads the run's own audit trail:
///
/// * **liveness** — every arrival terminates in exactly one outcome;
/// * **rebalance honesty** — every promotion's audit cites a source
///   signal at or above an enter threshold and a live target under the
///   busy bound;
/// * **no ping-pong** — no shard is promoted more than
///   `max_promotions_per_shard` times inside one rebalance window;
/// * **epoch monotonicity** — promotion epochs strictly increase from
///   the boot epoch, and the report's final epoch is the last one;
/// * **no stale sheds** — an arrival shed on a ring-epoch mismatch is
///   always a routing bug (the planted stale-router's signature);
/// * **epoch replay** — a crashed node's journals must replay the
///   epoch the cluster had reached.
///
/// Migration byte-identity needs the world's oracle to replay shards
/// standalone, so it lives in
/// [`RebalanceWorld`](crate::RebalanceWorld), not here.
pub fn check_rebalance_run(
    faulted: &ClusterTrafficReport,
    rebalance: &RebalanceConfig,
    arrivals: usize,
) -> Vec<Violation> {
    let mut violations = Vec::new();

    // Liveness: exactly one outcome per offered arrival — a crash or a
    // partition may shed an arrival, never silently drop it.
    let mut seen = BTreeSet::new();
    for routed in &faulted.outcomes {
        if !seen.insert(routed.outcome.index) {
            violations.push(Violation::DuplicateOutcome {
                index: routed.outcome.index,
            });
        }
    }
    for index in 0..arrivals {
        if !seen.contains(&index) {
            violations.push(Violation::MissingOutcome { index });
        }
    }

    // Rebalance honesty: the audit trail must justify every promotion.
    for audit in &faulted.rebalance_audits {
        let hot = audit.signal.queue_depth >= rebalance.enter_queue_depth
            || audit.signal.deadline_miss_permille >= rebalance.enter_miss_permille;
        let target_ok =
            audit.target_alive && audit.target_queue_depth < rebalance.target_queue_depth;
        if !hot || !target_ok {
            violations.push(Violation::UnjustifiedPromotion {
                shard: audit.decision.shard,
                at_tick: audit.decision.at_tick,
            });
        }
    }

    // No ping-pong: inside any rebalance window, a shard sees at most
    // `max_promotions_per_shard` promotions.
    let bound = rebalance.max_promotions_per_shard as usize;
    let shard_count = faulted.shards.len();
    for shard in 0..shard_count {
        let ticks: Vec<u64> = faulted
            .rebalance_audits
            .iter()
            .filter(|audit| audit.decision.shard == shard)
            .map(|audit| audit.decision.at_tick)
            .collect();
        if (bound..ticks.len())
            .any(|position| ticks[position] - ticks[position - bound] < rebalance.window_ticks)
        {
            violations.push(Violation::PromotionPingPong {
                shard,
                promotions: u32::try_from(bound + 1).unwrap_or(u32::MAX),
            });
        }
    }

    // Epoch monotonicity: strictly increasing from boot, and the final
    // epoch is the last promotion's (or boot if none fired).
    let mut last = RingEpoch::BOOT;
    for audit in &faulted.rebalance_audits {
        if audit.decision.epoch <= last {
            violations.push(Violation::EpochNotMonotone {
                epoch: audit.decision.epoch.get(),
            });
        }
        last = last.max(audit.decision.epoch);
    }
    if faulted.final_epoch != last {
        violations.push(Violation::EpochNotMonotone {
            epoch: faulted.final_epoch.get(),
        });
    }

    // No stale sheds: refusing work over a ring-epoch mismatch is never
    // legitimate — any replica can serve any shard byte-identically.
    for routed in &faulted.outcomes {
        if matches!(
            routed.outcome.disposition,
            TrafficDisposition::Shed(ShedReason::StaleRingEpoch { .. })
        ) {
            violations.push(Violation::StaleEpochShed {
                index: routed.outcome.index,
            });
        }
    }

    // Epoch replay: recovery must reconstruct the reached epoch from
    // the synchronously replicated journals.
    for replay in &faulted.epoch_replays {
        if replay.replayed_epoch < replay.epoch_at_crash {
            violations.push(Violation::EpochReplayMismatch {
                node: replay.node.0,
            });
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violations_render_with_kebab_names_and_addresses() {
        assert_eq!(
            Violation::OutcomeDiverged { index: 4 }.to_string(),
            "outcome-diverged(index=4)"
        );
        assert_eq!(
            Violation::UnjournaledAnswer {
                worker: 1,
                index: 9
            }
            .to_string(),
            "unjournaled-answer(worker=1, index=9)"
        );
        assert_eq!(
            Violation::JournalCorrupt {
                worker: 2,
                error: RecoveryError::MissingSnapshot,
            }
            .to_string(),
            "journal-corrupt(worker=2, error=journal holds no complete worker snapshot)"
        );
        assert_eq!(
            Violation::DishonestShed { index: 3 }.to_string(),
            "dishonest-shed(index=3)"
        );
        assert_eq!(
            Violation::AdmissionFlap {
                shard: 1,
                gap_ticks: 40
            }
            .to_string(),
            "admission-flap(shard=1, gap=40)"
        );
        assert_eq!(
            Violation::OverloadShedUnderCapacity { index: 7 }.to_string(),
            "overload-shed-under-capacity(index=7)"
        );
        assert_eq!(
            Violation::UnjustifiedPromotion {
                shard: 2,
                at_tick: 99
            }
            .to_string(),
            "unjustified-promotion(shard=2, tick=99)"
        );
        assert_eq!(
            Violation::PromotionPingPong {
                shard: 0,
                promotions: 3
            }
            .to_string(),
            "promotion-ping-pong(shard=0, promotions=3)"
        );
        assert_eq!(
            Violation::EpochNotMonotone { epoch: 4 }.to_string(),
            "epoch-not-monotone(epoch=4)"
        );
        assert_eq!(
            Violation::StaleEpochShed { index: 8 }.to_string(),
            "stale-epoch-shed(index=8)"
        );
        assert_eq!(
            Violation::MigratedAnswerMismatch { shard: 1, index: 5 }.to_string(),
            "migrated-answer-mismatch(shard=1, index=5)"
        );
        assert_eq!(
            Violation::EpochReplayMismatch { node: 2 }.to_string(),
            "epoch-replay-mismatch(node=2)"
        );
    }
}
