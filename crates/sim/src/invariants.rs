//! The safety and liveness invariants the simulator checks.
//!
//! Every check compares the faulted run against its *crash-free twin* —
//! the same world and the same schedule minus crash/restart events — or
//! inspects the faulted run's write-ahead journals directly:
//!
//! * **crash transparency** — every outcome equals the twin's, except
//!   that a query owned by an unrevived dead worker may shed as
//!   [`ShedReason::WorkerCrashed`];
//! * **liveness** — every submitted query terminates in exactly one
//!   outcome (answer or typed shed), none silently dropped;
//! * **no conflicting double-serve** — a journal may record the same
//!   index twice (a torn snapshot forces a re-execution), but every
//!   record for one index must be byte-identical;
//! * **write-ahead discipline** — an answer the runtime acknowledged
//!   must appear in its worker's journal;
//! * **journal integrity** — journals decode cleanly (recovery
//!   truncates torn tails; only an unrevived final crash may leave one)
//!   and snapshots are monotone in `(tick, next_position)`.

use lcakp_service::{
    BatchReport, DecodeMode, Disposition, JournalRecord, RecoveryError, ShedReason,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One invariant violation, addressable enough to debug from the
/// rendered repro alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// The faulted outcome differs from the crash-free twin's (and is
    /// not a `WorkerCrashed` shed of a dead worker's query).
    OutcomeDiverged {
        /// Batch position of the diverging query.
        index: usize,
    },
    /// A submitted query has no outcome at all — silently dropped.
    MissingOutcome {
        /// Batch position of the dropped query.
        index: usize,
    },
    /// A batch position appears in more than one outcome.
    DuplicateOutcome {
        /// The duplicated batch position.
        index: usize,
    },
    /// An acknowledged answer is absent from its worker's journal.
    UnjournaledAnswer {
        /// The worker that served the answer.
        worker: usize,
        /// Batch position of the unjournaled answer.
        index: usize,
    },
    /// The same index was journaled twice with different bytes.
    ConflictingJournalRecords {
        /// The worker whose journal conflicts.
        worker: usize,
        /// The conflicting batch position.
        index: usize,
    },
    /// Snapshot ticks or positions went backwards within one journal.
    JournalNotMonotone {
        /// The worker whose journal regressed.
        worker: usize,
    },
    /// A journal failed to decode even in recovery mode.
    JournalCorrupt {
        /// The worker whose journal is unreadable.
        worker: usize,
        /// The decoder's typed error.
        error: RecoveryError,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::OutcomeDiverged { index } => {
                write!(f, "outcome-diverged(index={index})")
            }
            Violation::MissingOutcome { index } => {
                write!(f, "missing-outcome(index={index})")
            }
            Violation::DuplicateOutcome { index } => {
                write!(f, "duplicate-outcome(index={index})")
            }
            Violation::UnjournaledAnswer { worker, index } => {
                write!(f, "unjournaled-answer(worker={worker}, index={index})")
            }
            Violation::ConflictingJournalRecords { worker, index } => {
                write!(
                    f,
                    "conflicting-journal-records(worker={worker}, index={index})"
                )
            }
            Violation::JournalNotMonotone { worker } => {
                write!(f, "journal-not-monotone(worker={worker})")
            }
            Violation::JournalCorrupt { worker, error } => {
                write!(f, "journal-corrupt(worker={worker}, error={error})")
            }
        }
    }
}

/// Checks every invariant of one faulted run against its crash-free
/// twin. `n` is the submitted batch size. Violations come back in a
/// deterministic order (coverage, divergence, then per-worker journal
/// checks).
pub fn check_run(twin: &BatchReport, faulted: &BatchReport, n: usize) -> Vec<Violation> {
    let mut violations = Vec::new();

    // Liveness: exactly one outcome per submitted index.
    let mut seen = BTreeSet::new();
    for outcome in &faulted.outcomes {
        if !seen.insert(outcome.index) {
            violations.push(Violation::DuplicateOutcome {
                index: outcome.index,
            });
        }
    }
    for index in 0..n {
        if !seen.contains(&index) {
            violations.push(Violation::MissingOutcome { index });
        }
    }

    // Crash transparency: outcomes equal the twin's, WorkerCrashed
    // sheds of dead workers excepted.
    let twin_by_index: BTreeMap<usize, &Disposition> = twin
        .outcomes
        .iter()
        .map(|outcome| (outcome.index, &outcome.disposition))
        .collect();
    for outcome in &faulted.outcomes {
        if matches!(
            outcome.disposition,
            Disposition::Shed(ShedReason::WorkerCrashed { .. })
        ) {
            continue;
        }
        if twin_by_index.get(&outcome.index) != Some(&&outcome.disposition) {
            violations.push(Violation::OutcomeDiverged {
                index: outcome.index,
            });
        }
    }

    // Per-worker journal checks on the faulted run.
    for trace in &faulted.workers {
        let decoded = match trace.journal.decode(DecodeMode::Recover) {
            Ok(decoded) => decoded,
            Err(error) => {
                violations.push(Violation::JournalCorrupt {
                    worker: trace.worker,
                    error,
                });
                continue;
            }
        };
        let mut disposed: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        let mut last_snapshot: Option<(u64, u64)> = None;
        for record in &decoded.records {
            match record {
                JournalRecord::Snapshot(snapshot) => {
                    let key = (snapshot.tick, snapshot.next_position);
                    if last_snapshot.is_some_and(|previous| {
                        snapshot.tick < previous.0 || snapshot.next_position < previous.1
                    }) {
                        violations.push(Violation::JournalNotMonotone {
                            worker: trace.worker,
                        });
                    }
                    last_snapshot = Some(key);
                }
                JournalRecord::Answered { index, .. } | JournalRecord::Shed { index, .. } => {
                    let encoded = record.encode();
                    let first = disposed.entry(*index).or_insert_with(|| encoded.clone());
                    if *first != encoded {
                        violations.push(Violation::ConflictingJournalRecords {
                            worker: trace.worker,
                            index: *index as usize,
                        });
                    }
                }
                JournalRecord::Admitted { .. } => {}
            }
        }
        // Write-ahead discipline: acknowledged answers must be
        // journaled by their owning worker.
        for outcome in &faulted.outcomes {
            let Some(answered) = outcome.disposition.answered() else {
                continue;
            };
            if answered.worker == trace.worker && !disposed.contains_key(&(outcome.index as u64)) {
                violations.push(Violation::UnjournaledAnswer {
                    worker: trace.worker,
                    index: outcome.index,
                });
            }
        }
    }

    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violations_render_with_kebab_names_and_addresses() {
        assert_eq!(
            Violation::OutcomeDiverged { index: 4 }.to_string(),
            "outcome-diverged(index=4)"
        );
        assert_eq!(
            Violation::UnjournaledAnswer {
                worker: 1,
                index: 9
            }
            .to_string(),
            "unjournaled-answer(worker=1, index=9)"
        );
        assert_eq!(
            Violation::JournalCorrupt {
                worker: 2,
                error: RecoveryError::MissingSnapshot,
            }
            .to_string(),
            "journal-corrupt(worker=2, error=journal holds no complete worker snapshot)"
        );
    }
}
