//! `lcakp-sim` — a VOPR-style deterministic simulator for the
//! `lcakp-service` crash–recovery layer (experiment E15).
//!
//! The simulator's claim mirrors Theorem 4.1's consistency guarantee
//! pushed through the serving runtime: with a shared seed, a worker
//! that crashes, tears its in-flight journal write, and recovers must
//! serve answers **byte-identical** to a worker that never died. Each
//! simulated case derives a randomized fault schedule — crashes,
//! restarts, corruption bursts, latency spikes, budget squeezes — from
//! `(root, case)`, runs the full service twice (the faulted run and
//! its crash-free twin), and checks safety *and* liveness invariants
//! against the twin and the write-ahead journals. A violating schedule
//! is automatically shrunk (drop-event / halve-magnitude passes) to a
//! locally minimal repro printed as a replayable seed + event list.
//!
//! One module per concern:
//!
//! * [`schedule`] — [`SimEvent`] and seed-derived schedule generation;
//! * [`invariants`] — the [`Violation`] taxonomy and [`check_run`];
//! * [`shrink`] — greedy schedule shrinking to a minimal repro;
//! * [`harness`] — the world builder, twin-run executor, range driver,
//!   and the canonical JSON the `e15_simulation --smoke` golden pins;
//! * [`cluster`] — the E16 extension: node crashes, restarts, and
//!   partitions against the simulated multi-node cluster, plus the
//!   replica byte-identity check and the `e16_cluster --smoke` JSON;
//! * [`slo`] — the E17 extension: open-loop traffic schedules against
//!   the adaptive admission controller, with admission-honesty,
//!   hysteresis, and liveness invariants checked against an
//!   admission-free twin, and the `e17_slo --smoke` JSON;
//! * [`calibrate`] — the per-query service-cost probe the traffic
//!   simulators share, so E17 and E18 schedules are expressed in the
//!   same unit;
//! * [`rebalance`] — the E18 extension: traffic-and-fault schedules
//!   against the admission-coupled ring-rebalance controller, with
//!   rebalance-honesty, anti-ping-pong, epoch-monotonicity, and
//!   migration byte-identity invariants, relief measured against a
//!   frozen-ring twin, and the `e18_rebalance --smoke` JSON.
//!
//! See `docs/robustness.md` ("Crash–recovery & simulation" and
//! "Cluster failover & partitions") for the journal format, the
//! invariant list, and how to replay a repro.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod calibrate;
pub mod cluster;
pub mod harness;
pub mod invariants;
pub mod rebalance;
pub mod schedule;
pub mod shrink;
pub mod slo;

pub use calibrate::calibrate_cost;
pub use cluster::{
    render_cluster_json, run_cluster_range, run_cluster_smoke, ClusterCaseResult, ClusterCaseStats,
    ClusterSimConfig, ClusterSimReport, ClusterWorld, E16_SMOKE_CASES,
};
pub use harness::{
    render_json, run_range, run_smoke, CaseResult, CaseStats, Repro, SimConfig, SimReport,
    SimWorld, SMOKE_CASES,
};
pub use invariants::{check_cluster_run, check_rebalance_run, check_run, check_slo_run, Violation};
pub use rebalance::{
    hunt_planted_rebalance_bug, render_rebalance_json, run_rebalance_range, run_rebalance_smoke,
    RebalanceCaseResult, RebalanceCaseStats, RebalanceSimConfig, RebalanceSimReport,
    RebalanceWorld, E18_SMOKE_CASES,
};
pub use schedule::{
    generate_cluster_schedule, generate_rebalance_schedule, generate_schedule,
    generate_slo_schedule, SimEvent,
};
pub use shrink::{shrink, Shrunk};
pub use slo::{
    hunt_planted_bug, render_slo_json, run_slo_range, run_slo_smoke, slo_target_permille,
    SloCaseResult, SloCaseStats, SloSimConfig, SloSimReport, SloWorld, E17_SMOKE_CASES,
};
