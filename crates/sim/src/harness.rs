//! The simulator itself: builds a world, runs each case's crash-free
//! twin and faulted run, checks invariants, and shrinks the first
//! failure.
//!
//! A *case* is `(root, case number)`: the schedule derives from the
//! seed, the world from the root, and both runs from `serve_batch` —
//! so one `u64` replays everything, and a shrunk event list replays
//! without the generator at all.

use crate::invariants::{check_run, Violation};
use crate::schedule::{generate_schedule, SimEvent};
use crate::shrink::{shrink, Shrunk};
use lcakp_core::{LcaError, LcaKp};
use lcakp_knapsack::iky::Epsilon;
use lcakp_knapsack::{ItemId, NormalizedInstance};
use lcakp_oracle::{FaultPlan, InstanceOracle, Seed};
use lcakp_reproducible::SampleBudget;
use lcakp_service::{
    seed_to_u64, serve_batch, BatchReport, BreakerConfig, ChaosPlan, FaultSchedule, LatencyWindow,
    RecoveryDiscipline, ServiceConfig, WorkerEvent,
};
use lcakp_workloads::{Family, WorkloadSpec};
use std::fmt::Write as _;
use std::ops::Range;

/// Simulator tuning. The defaults keep one case (twin + faulted run)
/// in the low hundreds of milliseconds so seed ranges and shrink loops
/// stay cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Instance size (= batch size: the batch queries every item).
    pub n: usize,
    /// Worker threads in the simulated service.
    pub workers: usize,
    /// Recovery discipline under test — [`RecoveryDiscipline::Faithful`]
    /// must survive every schedule; anything else is a planted bug the
    /// simulator exists to catch.
    pub recovery: RecoveryDiscipline,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            n: 24,
            workers: 3,
            recovery: RecoveryDiscipline::Faithful,
        }
    }
}

/// The fixed world one simulation runs in: instance, LCA, seeds, and
/// the base service configuration events get applied to.
#[derive(Debug)]
pub struct SimWorld {
    norm: NormalizedInstance,
    lca: LcaKp,
    shared_seed: Seed,
    service_root: Seed,
    base: ServiceConfig,
}

/// Headline counters of one faulted run (rendered into the smoke JSON).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CaseStats {
    /// Queries answered (any tier).
    pub answered: usize,
    /// Queries shed with a typed reason.
    pub shed: usize,
    /// Worker crashes that actually fired.
    pub crashes: usize,
}

/// One simulated case: its schedule, run counters, and violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseResult {
    /// The case number (schedule seed index).
    pub case: u64,
    /// The generated schedule.
    pub events: Vec<SimEvent>,
    /// Counters of the faulted run.
    pub stats: CaseStats,
    /// Invariant violations (empty = the case passed).
    pub violations: Vec<Violation>,
}

/// A shrunk repro of the first violating case in a range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repro {
    /// The violating case number (replays the unshrunk schedule).
    pub case: u64,
    /// The shrunk schedule and the violations it still triggers.
    pub shrunk: Shrunk,
}

impl Repro {
    /// The repro as replayable text: the case seed plus one line per
    /// surviving event and violation.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "repro: case {} shrunk to {} event(s) ({} candidate schedules tried)",
            self.case,
            self.shrunk.events.len(),
            self.shrunk.attempts
        );
        for event in &self.shrunk.events {
            let _ = writeln!(out, "  event: {event}");
        }
        for violation in &self.shrunk.violations {
            let _ = writeln!(out, "  violation: {violation}");
        }
        out
    }
}

/// Everything [`run_range`] learned: per-case results plus the first
/// violation's shrunk repro.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimReport {
    /// One entry per case, in case order.
    pub cases: Vec<CaseResult>,
    /// Shrunk repro of the first violating case, if any violated.
    pub repro: Option<Repro>,
}

impl SimReport {
    /// Total violations across the range.
    pub fn total_violations(&self) -> usize {
        self.cases.iter().map(|case| case.violations.len()).sum()
    }
}

impl SimWorld {
    /// Builds the world for `root`: a small dominated instance and a
    /// service tuned so corruption bursts trip breakers and budget
    /// squeezes force sheds, while a clean query still answers full
    /// tier.
    ///
    /// # Errors
    ///
    /// Propagates workload generation and LCA construction errors.
    pub fn build(root: &Seed, config: &SimConfig) -> Result<SimWorld, LcaError> {
        let workload_seed = seed_to_u64(&root.derive("sim/workload", 0));
        let norm = WorkloadSpec::new(Family::SmallDominated, config.n, workload_seed)
            .generate_normalized()
            .map_err(LcaError::from)?;
        let lca =
            LcaKp::new(Epsilon::new(1, 3)?)?.with_budget(SampleBudget::Calibrated { factor: 0.01 });
        let base = ServiceConfig {
            workers: config.workers,
            queue_depth: config.n.max(1),
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown_ticks: 6,
                half_open_probes: 1,
            },
            recovery: config.recovery,
            ..ServiceConfig::default()
        };
        Ok(SimWorld {
            norm,
            lca,
            shared_seed: root.derive("sim/shared", 0),
            service_root: root.derive("sim/serving", 0),
            base,
        })
    }

    /// Applies the ambient (non-crash) events to the base world.
    fn ambient_world(&self, events: &[SimEvent]) -> (ServiceConfig, ChaosPlan) {
        let mut config = self.base.clone();
        let mut plan = ChaosPlan::none();
        for event in events {
            match *event {
                SimEvent::CorruptionBurst {
                    period,
                    len,
                    transient_permille,
                    corruption_permille,
                } => {
                    plan.burst = FaultPlan {
                        transient_rate: f64::from(transient_permille) / 1000.0,
                        corruption_rate: f64::from(corruption_permille) / 1000.0,
                        signal_corruption: true,
                        ..FaultPlan::none()
                    };
                    plan.burst_period = period;
                    plan.burst_len = len;
                }
                SimEvent::LatencySpike {
                    start_tick,
                    len_ticks,
                    extra_cost,
                } => {
                    config.cost = config.cost.with_spike(LatencyWindow {
                        start_tick,
                        end_tick: start_tick.saturating_add(len_ticks),
                        extra_cost,
                    });
                }
                SimEvent::BudgetSqueeze { slack_accesses } => {
                    config.worker_access_cap = Some(
                        self.lca
                            .worst_case_accesses()
                            .saturating_add(slack_accesses),
                    );
                }
                SimEvent::Crash { .. }
                | SimEvent::Restart { .. }
                | SimEvent::NodeCrash { .. }
                | SimEvent::NodeRestart { .. }
                | SimEvent::Partition { .. }
                | SimEvent::Traffic { .. }
                | SimEvent::OverloadSurge { .. } => {}
            }
        }
        (config, plan)
    }

    /// Runs one schedule: the crash-free twin first (also the timeline
    /// that turns permille crash ticks into absolute ones), then the
    /// faulted run, then every invariant check.
    ///
    /// # Errors
    ///
    /// Propagates hard configuration errors from [`serve_batch`].
    pub fn run_schedule(
        &self,
        events: &[SimEvent],
    ) -> Result<(CaseStats, Vec<Violation>), LcaError> {
        let batch: Vec<ItemId> = (0..self.norm.len()).map(ItemId).collect();
        let oracle = InstanceOracle::new(&self.norm);
        let (config, twin_plan) = self.ambient_world(events);
        let serve = |plan: &ChaosPlan| {
            serve_batch(
                &self.lca,
                &oracle,
                &self.shared_seed,
                &self.service_root,
                &batch,
                &config,
                Some(plan as &dyn FaultSchedule),
            )
        };
        let twin = serve(&twin_plan)?;
        let worker_events = map_crash_events(events, &twin);
        let faulted_plan = ChaosPlan {
            worker_events,
            ..twin_plan
        };
        let faulted = serve(&faulted_plan)?;
        let violations = check_run(&twin, &faulted, batch.len());
        let stats = CaseStats {
            answered: faulted.outcomes.len() - faulted.shed_count(),
            shed: faulted.shed_count(),
            crashes: faulted
                .workers
                .iter()
                .map(|trace| trace.crashes.len())
                .sum(),
        };
        Ok((stats, violations))
    }

    /// Convenience for shrink loops: violations only, with hard errors
    /// treated as "no violation" (a schedule that cannot even run is
    /// not a smaller repro of an invariant break).
    pub fn violations_for(&self, events: &[SimEvent]) -> Vec<Violation> {
        self.run_schedule(events)
            .map(|(_, violations)| violations)
            .unwrap_or_default()
    }
}

/// Turns the schedule's permille crash ticks into absolute
/// [`WorkerEvent`]s on the twin's timeline. Events naming a worker the
/// configuration doesn't have are dropped (shrunk or hand-written
/// schedules may contain them).
fn map_crash_events(events: &[SimEvent], twin: &BatchReport) -> Vec<WorkerEvent> {
    let mut worker_events = Vec::new();
    for event in events {
        match *event {
            SimEvent::Crash {
                worker,
                tick_permille,
                torn_keep,
            } => {
                let Some(trace) = twin.workers.get(worker) else {
                    continue;
                };
                let at_tick = trace.end_tick.max(1) * u64::from(tick_permille) / 1000;
                worker_events.push(WorkerEvent::Crash {
                    worker,
                    at_tick,
                    torn_keep,
                });
            }
            SimEvent::Restart { worker } => {
                worker_events.push(WorkerEvent::Restart { worker, at_tick: 0 });
            }
            _ => {}
        }
    }
    worker_events
}

/// Runs the cases in `range` against one world, shrinking the first
/// violating schedule (if any) to a minimal repro.
///
/// # Errors
///
/// Propagates world construction and [`serve_batch`] errors.
pub fn run_range(
    root: &Seed,
    config: &SimConfig,
    range: Range<u64>,
) -> Result<SimReport, LcaError> {
    let world = SimWorld::build(root, config)?;
    let mut cases = Vec::new();
    let mut repro = None;
    for case in range {
        let events = generate_schedule(root, case, config.workers);
        let (stats, violations) = world.run_schedule(&events)?;
        if !violations.is_empty() && repro.is_none() {
            let shrunk = shrink(&events, |candidate| world.violations_for(candidate));
            repro = Some(Repro { case, shrunk });
        }
        cases.push(CaseResult {
            case,
            events,
            stats,
            violations,
        });
    }
    Ok(SimReport { cases, repro })
}

/// Renders a range report as canonical JSON: fixed field order, no
/// floats, no ambient state — two runs with the same root must be
/// byte-identical. This is what the `e15_simulation --smoke` golden
/// pins.
#[must_use]
pub fn render_json(label: &str, config: &SimConfig, report: &SimReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"label\": \"{label}\",");
    let _ = writeln!(out, "  \"n\": {},", config.n);
    let _ = writeln!(out, "  \"workers\": {},", config.workers);
    let _ = writeln!(out, "  \"recovery\": \"{}\",", config.recovery);
    let _ = writeln!(out, "  \"cases\": [");
    for (position, case) in report.cases.iter().enumerate() {
        let events: Vec<String> = case
            .events
            .iter()
            .map(|event| format!("\"{event}\""))
            .collect();
        let violations: Vec<String> = case
            .violations
            .iter()
            .map(|violation| format!("\"{violation}\""))
            .collect();
        let comma = if position + 1 < report.cases.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"case\": {}, \"events\": [{}], \"answered\": {}, \"shed\": {}, \
             \"crashes\": {}, \"violations\": [{}]}}{comma}",
            case.case,
            events.join(", "),
            case.stats.answered,
            case.stats.shed,
            case.stats.crashes,
            violations.join(", "),
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"total_violations\": {},",
        report.total_violations()
    );
    let _ = writeln!(
        out,
        "  \"repro\": {}",
        report.repro.as_ref().map_or_else(
            || "null".to_string(),
            |repro| format!(
                "{{\"case\": {}, \"events\": {}}}",
                repro.case,
                repro.shrunk.events.len()
            )
        )
    );
    let _ = write!(out, "}}");
    out
}

/// Cases the smoke run covers (CI diffs its JSON against the golden).
pub const SMOKE_CASES: u64 = 5;

/// Runs the committed smoke range for the `e15_simulation --smoke` bin
/// and the golden test: [`SMOKE_CASES`] cases under faithful recovery.
///
/// # Errors
///
/// Propagates [`run_range`] errors.
pub fn run_smoke(root: &Seed) -> Result<String, LcaError> {
    let config = SimConfig::default();
    let report = run_range(root, &config, 0..SMOKE_CASES)?;
    Ok(render_json("e15-smoke", &config, &report))
}
