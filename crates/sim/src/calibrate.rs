//! Per-query service-cost calibration shared by the traffic-driven
//! simulators (E17, E18).
//!
//! Every traffic schedule expresses its inter-arrival gap in *permille
//! of the world's measured per-query service cost*, so a gap of 1000
//! offers exactly one server's capacity and schedules stay meaningful
//! across instance sizes. The measurement itself is a calibration
//! probe: a short back-to-back steady trace served with admission
//! disabled, whose mean ticks per query becomes the unit. [`SloWorld`]
//! (E17) and [`RebalanceWorld`] (E18) both build on this helper, so
//! their calibrations agree by construction.
//!
//! [`SloWorld`]: crate::SloWorld
//! [`RebalanceWorld`]: crate::RebalanceWorld

use lcakp_core::{LcaError, LcaKp};
use lcakp_oracle::{ItemOracle, Seed, WeightedSampler};
use lcakp_service::{
    generate_trace, run_open_loop, AdmissionConfig, OpenLoopConfig, ServiceConfig, TrafficConfig,
    TrafficShape,
};

/// Arrivals in the calibration probe. Long enough to average out the
/// degradation ladder's per-query variance, short enough to stay
/// negligible next to one simulated case.
const PROBE_ARRIVALS: usize = 32;

/// Measures the mean per-query service cost (virtual ticks) of one
/// world: serves a [`PROBE_ARRIVALS`]-arrival back-to-back steady trace
/// on a single shard with admission disabled, and divides the final
/// tick by the arrival count. The result is never zero — schedules
/// multiply gaps by it.
///
/// The probe trace derives from `trace_root`, so a world calibrates
/// identically every time it is built from the same seeds.
///
/// # Errors
///
/// Propagates hard serving errors from [`run_open_loop`].
pub fn calibrate_cost<O>(
    lca: &LcaKp,
    oracle: &O,
    shared_seed: &Seed,
    service_root: &Seed,
    trace_root: &Seed,
    service: &ServiceConfig,
    universe: usize,
) -> Result<u64, LcaError>
where
    O: ItemOracle + WeightedSampler,
{
    let probe_trace = generate_trace(
        trace_root,
        &TrafficConfig {
            shape: TrafficShape::Steady,
            arrivals: PROBE_ARRIVALS,
            mean_gap_ticks: 1,
            universe,
            shards: 1,
        },
    );
    let probe = run_open_loop(
        lca,
        oracle,
        shared_seed,
        service_root,
        &probe_trace,
        &OpenLoopConfig {
            service: service.clone(),
            admission: AdmissionConfig::default(),
            discipline: None,
            shards: 1,
        },
    )?;
    Ok((probe.end_tick / probe_trace.len() as u64).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcakp_knapsack::iky::Epsilon;
    use lcakp_oracle::InstanceOracle;
    use lcakp_reproducible::SampleBudget;
    use lcakp_service::{seed_to_u64, BreakerConfig};
    use lcakp_workloads::{Family, WorkloadSpec};

    /// The calibrated cost is a pure function of the seeds: pin it for
    /// a fixed root so an accidental change to the probe (its length,
    /// shape, or serving config) shows up as a test failure instead of
    /// silently re-scaling every schedule in the golden files.
    #[test]
    fn calibrated_cost_is_pinned_for_a_fixed_seed() {
        let root = Seed::from_entropy_u64(0x5eed);
        let workload_seed = seed_to_u64(&root.derive("sim/slo-workload", 0));
        let norm = WorkloadSpec::new(Family::SmallDominated, 24, workload_seed)
            .generate_normalized()
            .expect("workload generates");
        let lca = LcaKp::new(Epsilon::new(1, 3).expect("valid epsilon"))
            .expect("LCA builds")
            .with_budget(SampleBudget::Calibrated { factor: 0.01 });
        let service = ServiceConfig {
            workers: 1,
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown_ticks: 6,
                half_open_probes: 1,
            },
            ..ServiceConfig::default()
        };
        let cost = calibrate_cost(
            &lca,
            &InstanceOracle::new(&norm),
            &root.derive("sim/slo-shared", 0),
            &root.derive("sim/slo-serving", 0),
            &root.derive("sim/slo-trace", 0),
            &service,
            norm.len(),
        )
        .expect("probe serves");
        assert_eq!(cost, calibrated_cost_for_seed_0x5eed());
        assert!(cost >= 1);
    }

    /// The pinned value. Kept in a helper so the assertion above reads
    /// as "the calibration did not drift".
    fn calibrated_cost_for_seed_0x5eed() -> u64 {
        22_758
    }
}
