//! The E18 rebalance simulator: traffic-driven cluster schedules
//! against the admission-coupled ring-rebalance controller.
//!
//! Each case derives one load-concentrating traffic shape (hot shard,
//! bursty, or query of death), an optional overload surge, and node
//! crash/restart/partition events from `(root, case)`, then runs
//! [`serve_cluster_traffic`] twice over the same trace and faults: the
//! *controlled* run with the [`RebalanceController`] armed, and its
//! *no-rebalance twin* (same admission, the ring frozen at boot).
//! [`check_rebalance_run`] verifies the E18 invariants on the
//! controlled run's own audit trail:
//!
//! * **rebalance honesty** — every promotion cites an overloaded
//!   source signal and a live, under-loaded target;
//! * **no ping-pong** — promotions per shard per window stay under the
//!   dual-hysteresis bound;
//! * **epoch monotonicity** — ring epochs strictly increase, and a
//!   crashed node's journals replay the epoch the cluster reached;
//! * **migration byte-identity** — every acknowledged answer matches
//!   the shard's standalone replay of the same admitted subsequence
//!   (Theorem 4.1's consistency guarantee across a migration).
//!
//! The twin is the *relief* baseline: across the range, promotion must
//! demonstrably help at least one hot-shard scenario — neither the
//! hottest node's p99 nor the cluster shed rate worse than the frozen
//! ring's, and at least one strictly better.
//! [`RebalanceDiscipline::Faithful`] must survive every schedule;
//! [`RebalanceDiscipline::StaleEpoch`] is the planted bug (a router
//! that keeps serving from the boot ring view after a promotion), which
//! the simulator catches as stale-epoch sheds and shrinks to a
//! replayable repro.
//!
//! [`RebalanceController`]: lcakp_service::RebalanceController

use crate::calibrate::calibrate_cost;
use crate::cluster::map_node_events;
use crate::harness::Repro;
use crate::invariants::{check_rebalance_run, Violation};
use crate::schedule::{generate_rebalance_schedule, SimEvent};
use crate::shrink::shrink;
use crate::slo::apply_surge;
use lcakp_core::{LcaError, LcaKp};
use lcakp_knapsack::iky::Epsilon;
use lcakp_knapsack::NormalizedInstance;
use lcakp_oracle::{InstanceOracle, Seed};
use lcakp_reproducible::SampleBudget;
use lcakp_service::{
    generate_trace, replay_shard_traffic, seed_to_u64, serve_cluster_traffic, AdmissionConfig,
    AdmissionDiscipline, Arrival, BreakerConfig, ClusterTrafficConfig, ClusterTrafficReport,
    RebalanceConfig, RebalanceDiscipline, ServiceConfig, TrafficConfig, TrafficDisposition,
    TrafficShape,
};
use lcakp_workloads::{Family, WorkloadSpec};
use std::fmt::Write as _;
use std::ops::Range;

/// Rebalance-simulator tuning. The defaults keep one case (controlled
/// run + no-rebalance twin + per-shard standalone replays) in the tens
/// of milliseconds so seed ranges and shrink loops stay affordable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceSimConfig {
    /// Instance size (arrivals query items `0..n`).
    pub n: usize,
    /// Nodes in the simulated membership.
    pub nodes: usize,
    /// Replicas per shard.
    pub replication: usize,
    /// Shards arrivals are routed over.
    pub shards: usize,
    /// Arrivals per generated trace.
    pub arrivals: usize,
    /// Routing discipline under test —
    /// [`RebalanceDiscipline::Faithful`] must survive every schedule;
    /// [`RebalanceDiscipline::StaleEpoch`] is the planted bug.
    pub routing: RebalanceDiscipline,
}

impl Default for RebalanceSimConfig {
    fn default() -> Self {
        RebalanceSimConfig {
            n: 24,
            nodes: 3,
            replication: 2,
            shards: 4,
            arrivals: 160,
            routing: RebalanceDiscipline::Faithful,
        }
    }
}

/// The fixed world one rebalance simulation runs in: the instance, the
/// LCA, the seeds, and the calibration every schedule is expressed
/// against. Everything here depends only on `(root, config)` — the
/// schedule is the entire difference between two cases.
#[derive(Debug)]
pub struct RebalanceWorld {
    norm: NormalizedInstance,
    lca: LcaKp,
    shared_seed: Seed,
    service_root: Seed,
    trace_root: Seed,
    cluster: ClusterTrafficConfig,
    arrivals: usize,
    /// Measured mean service ticks per query (the unit every schedule
    /// gap is permille of).
    cost: u64,
}

/// Headline counters of one controlled run, with its no-rebalance
/// twin's load figures alongside (rendered into the smoke JSON).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RebalanceCaseStats {
    /// Arrivals the trace offered.
    pub offered: u64,
    /// Arrivals answered.
    pub answered: u64,
    /// Arrivals shed with a typed reason.
    pub shed: u64,
    /// Ring promotions the rebalance controller fired.
    pub promotions: usize,
    /// Arrival-time acting-owner changes caused by faults (not by
    /// promotions).
    pub failovers: usize,
    /// Sheds blaming a stale ring epoch (zero under faithful routing).
    pub stale_sheds: usize,
    /// The final ring epoch.
    pub final_epoch: u64,
    /// The hottest node's p99 end-to-end latency, virtual ticks.
    pub p99_ticks: u64,
    /// The same figure for the no-rebalance twin.
    pub twin_p99_ticks: u64,
    /// Cluster-wide shed rate, permille of offered arrivals.
    pub shed_permille: u32,
    /// The same figure for the no-rebalance twin.
    pub twin_shed_permille: u32,
    /// Whether rebalancing demonstrably relieved the cluster: at least
    /// one promotion fired, neither load figure got worse than the
    /// frozen-ring twin's, and at least one strictly improved.
    pub relieved: bool,
}

/// One simulated rebalance case: its schedule, run counters,
/// violations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceCaseResult {
    /// The case number (schedule seed index).
    pub case: u64,
    /// The generated traffic-and-fault schedule.
    pub events: Vec<SimEvent>,
    /// Counters of the controlled run (and its twin's baselines).
    pub stats: RebalanceCaseStats,
    /// Invariant violations (empty = the case passed).
    pub violations: Vec<Violation>,
}

/// Everything [`run_rebalance_range`] learned: per-case results plus
/// the first violation's shrunk repro.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceSimReport {
    /// One entry per case, in case order.
    pub cases: Vec<RebalanceCaseResult>,
    /// Shrunk repro of the first violating case, if any violated.
    pub repro: Option<Repro>,
}

impl RebalanceSimReport {
    /// Total violations across the range.
    pub fn total_violations(&self) -> usize {
        self.cases.iter().map(|case| case.violations.len()).sum()
    }

    /// Whether at least one hot-shard case was demonstrably relieved —
    /// the scenario the rebalance controller exists for. Not every
    /// hot-shard case can be: a partition may isolate every standby, or
    /// answering the arrivals the frozen-ring twin would have shed can
    /// legitimately widen the donor's latency tail even as the shed
    /// rate collapses.
    pub fn hot_shard_relieved(&self) -> bool {
        self.cases
            .iter()
            .filter(|case| {
                case.events.iter().any(|event| {
                    matches!(
                        event,
                        SimEvent::Traffic {
                            shape: TrafficShape::HotShard,
                            ..
                        }
                    )
                })
            })
            .any(|case| case.stats.relieved)
    }
}

impl RebalanceWorld {
    /// Builds the world for `root`: the same dominated instance family
    /// and tuning as the E15/E16/E17 worlds — under rebalance-specific
    /// domain labels, so the simulators' random streams stay
    /// independent — then calibrates the per-query service cost with
    /// the shared probe and scales the SLO deadline, the admission
    /// hysteresis, and the rebalance dwell/window to it.
    ///
    /// # Errors
    ///
    /// Propagates workload generation, LCA construction, and probe-run
    /// errors.
    pub fn build(root: &Seed, config: &RebalanceSimConfig) -> Result<RebalanceWorld, LcaError> {
        let workload_seed = seed_to_u64(&root.derive("sim/rebalance-workload", 0));
        let norm = WorkloadSpec::new(Family::SmallDominated, config.n, workload_seed)
            .generate_normalized()
            .map_err(LcaError::from)?;
        let lca =
            LcaKp::new(Epsilon::new(1, 3)?)?.with_budget(SampleBudget::Calibrated { factor: 0.01 });
        let shared_seed = root.derive("sim/rebalance-shared", 0);
        let service_root = root.derive("sim/rebalance-serving", 0);
        let trace_root = root.derive("sim/rebalance-trace", 0);
        let mut service = ServiceConfig {
            workers: 1,
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown_ticks: 6,
                half_open_probes: 1,
            },
            ..ServiceConfig::default()
        };
        let cost = calibrate_cost(
            &lca,
            &InstanceOracle::new(&norm),
            &shared_seed,
            &service_root,
            &trace_root,
            &service,
            config.n,
        )?;

        // The same deadline/hysteresis scaling as the E17 world, plus
        // the rebalance dual hysteresis: a short dwell (promote fast
        // under genuine heat) under a long window (but never twice per
        // shard back to back — the anti-ping-pong bound).
        service.deadline_ticks = cost * 8;
        let admission = AdmissionConfig {
            enter_queue_depth: 6,
            exit_queue_depth: 2,
            enter_miss_permille: 250,
            exit_miss_permille: 60,
            hysteresis_ticks: cost * 8,
            shed_permille: 400,
            queue_depth_normal: 12,
            queue_depth_overloaded: 4,
        };
        let rebalance = RebalanceConfig {
            enter_queue_depth: 6,
            enter_miss_permille: 250,
            target_queue_depth: 3,
            hysteresis_ticks: cost * 4,
            window_ticks: cost * 64,
            max_promotions_per_shard: 2,
        };
        Ok(RebalanceWorld {
            norm,
            lca,
            shared_seed,
            service_root,
            trace_root,
            cluster: ClusterTrafficConfig {
                nodes: config.nodes,
                replication: config.replication,
                shards: config.shards,
                vnodes: 64,
                service,
                admission,
                discipline: Some(AdmissionDiscipline::Faithful),
                rebalance: Some(rebalance),
                routing: config.routing,
            },
            arrivals: config.arrivals,
            cost,
        })
    }

    /// The calibrated per-query service cost (ticks).
    #[must_use]
    pub fn cost(&self) -> u64 {
        self.cost
    }

    /// Maps a schedule onto its arrival trace, exactly as the E17 world
    /// does: the traffic event picks the shape and scales the mean gap
    /// by the calibrated cost; each overload surge compresses the gaps
    /// inside its window. An event list with no traffic event maps to
    /// the empty trace.
    #[must_use]
    pub fn build_trace(&self, events: &[SimEvent]) -> Vec<Arrival> {
        let Some((shape, gap_permille)) = events.iter().find_map(|event| match event {
            SimEvent::Traffic {
                shape,
                gap_permille,
            } => Some((*shape, *gap_permille)),
            _ => None,
        }) else {
            return Vec::new();
        };
        let mut trace = generate_trace(
            &self.trace_root,
            &TrafficConfig {
                shape,
                arrivals: self.arrivals,
                mean_gap_ticks: (self.cost * u64::from(gap_permille) / 1000).max(1),
                universe: self.norm.len(),
                shards: self.cluster.shards,
            },
        );
        for event in events {
            if let SimEvent::OverloadSurge {
                start_permille,
                len_permille,
                gap_div,
            } = event
            {
                apply_surge(&mut trace, *start_permille, *len_permille, *gap_div);
            }
        }
        trace
    }

    /// Runs one schedule: builds the trace, maps the node faults onto
    /// the trace horizon, runs the controlled cluster and its
    /// no-rebalance twin, and checks every E18 invariant (including
    /// migration byte-identity against per-shard standalone replays).
    ///
    /// # Errors
    ///
    /// Propagates hard serving errors from [`serve_cluster_traffic`].
    pub fn run_schedule(
        &self,
        events: &[SimEvent],
    ) -> Result<(RebalanceCaseStats, Vec<Violation>), LcaError> {
        let trace = self.build_trace(events);
        let horizon = trace.last().map_or(0, |arrival| arrival.at_tick).max(1);
        let node_events = map_node_events(events, horizon, self.cluster.nodes);
        let oracle = InstanceOracle::new(&self.norm);
        let controlled = serve_cluster_traffic(
            &self.lca,
            &oracle,
            &self.shared_seed,
            &self.service_root,
            &trace,
            &self.cluster,
            &node_events,
        )?;
        let twin = serve_cluster_traffic(
            &self.lca,
            &oracle,
            &self.shared_seed,
            &self.service_root,
            &trace,
            &ClusterTrafficConfig {
                rebalance: None,
                routing: RebalanceDiscipline::Faithful,
                ..self.cluster.clone()
            },
            &node_events,
        )?;
        let rebalance = self
            .cluster
            .rebalance
            .expect("the world always arms the controller");
        let mut violations = check_rebalance_run(&controlled, &rebalance, trace.len());
        violations.extend(self.migrated_mismatches(&controlled, &trace));
        Ok((case_stats(&controlled, &twin), violations))
    }

    /// The migration byte-identity check: for every shard, the admitted
    /// subsequence the cluster answered is replayed standalone — what
    /// any replica computes from the shared seeds alone — and the
    /// acknowledged answers must match byte-for-byte, no matter how
    /// often the shard migrated mid-trace.
    fn migrated_mismatches(
        &self,
        controlled: &ClusterTrafficReport,
        trace: &[Arrival],
    ) -> Vec<Violation> {
        let oracle = InstanceOracle::new(&self.norm);
        let mut violations = Vec::new();
        for shard in 0..self.cluster.shards {
            let admitted: Vec<(usize, Arrival)> = controlled
                .outcomes
                .iter()
                .filter(|routed| {
                    routed.outcome.shard == shard
                        && matches!(
                            routed.outcome.disposition,
                            TrafficDisposition::Answered { .. }
                        )
                })
                .map(|routed| (routed.outcome.index, trace[routed.outcome.index]))
                .collect();
            let Ok(replayed) = replay_shard_traffic(
                &self.lca,
                &oracle,
                &self.shared_seed,
                &self.service_root,
                &admitted,
                shard,
                &self.cluster.service,
            ) else {
                // A replay that cannot even run is a world bug, not a
                // byte-identity violation of this schedule.
                continue;
            };
            let mut position = 0usize;
            for routed in &controlled.outcomes {
                if routed.outcome.shard != shard {
                    continue;
                }
                if let TrafficDisposition::Answered { answer, .. } = routed.outcome.disposition {
                    if replayed.get(position) != Some(&(routed.outcome.index, answer)) {
                        violations.push(Violation::MigratedAnswerMismatch {
                            shard,
                            index: routed.outcome.index,
                        });
                        break;
                    }
                    position += 1;
                }
            }
        }
        violations
    }

    /// Convenience for shrink loops: violations only, with hard errors
    /// treated as "no violation" (a schedule that cannot even run is
    /// not a smaller repro of an invariant break).
    pub fn violations_for(&self, events: &[SimEvent]) -> Vec<Violation> {
        self.run_schedule(events)
            .map(|(_, violations)| violations)
            .unwrap_or_default()
    }
}

/// Folds one controlled run and its no-rebalance twin into the
/// headline stats, including the relief verdict.
fn case_stats(
    controlled: &ClusterTrafficReport,
    twin: &ClusterTrafficReport,
) -> RebalanceCaseStats {
    let hottest_p99 = |report: &ClusterTrafficReport| {
        report
            .nodes
            .iter()
            .map(|node| node.slo.p99_ticks)
            .max()
            .unwrap_or(0)
    };
    let shed_permille = |report: &ClusterTrafficReport| {
        u32::try_from(report.slo.shed * 1000 / report.slo.offered.max(1)).unwrap_or(u32::MAX)
    };
    let p99_ticks = hottest_p99(controlled);
    let twin_p99_ticks = hottest_p99(twin);
    let controlled_shed = shed_permille(controlled);
    let twin_shed = shed_permille(twin);
    let promotions = controlled.promotion_count();
    RebalanceCaseStats {
        offered: controlled.slo.offered,
        answered: controlled.slo.answered,
        shed: controlled.slo.shed,
        promotions,
        failovers: controlled.shards.iter().map(|shard| shard.failovers).sum(),
        stale_sheds: controlled.stale_sheds(),
        final_epoch: controlled.final_epoch.get(),
        p99_ticks,
        twin_p99_ticks,
        shed_permille: controlled_shed,
        twin_shed_permille: twin_shed,
        relieved: promotions > 0
            && p99_ticks <= twin_p99_ticks
            && controlled_shed <= twin_shed
            && (p99_ticks < twin_p99_ticks || controlled_shed < twin_shed),
    }
}

/// Runs the cases in `range` against one rebalance world, shrinking
/// the first violating schedule (if any) to a minimal repro.
///
/// # Errors
///
/// Propagates world construction and [`serve_cluster_traffic`] errors.
pub fn run_rebalance_range(
    root: &Seed,
    config: &RebalanceSimConfig,
    range: Range<u64>,
) -> Result<RebalanceSimReport, LcaError> {
    let world = RebalanceWorld::build(root, config)?;
    let mut cases = Vec::new();
    let mut repro = None;
    for case in range {
        let events = generate_rebalance_schedule(root, case, config.nodes);
        let (stats, violations) = world.run_schedule(&events)?;
        if !violations.is_empty() && repro.is_none() {
            let shrunk = shrink(&events, |candidate| world.violations_for(candidate));
            repro = Some(Repro { case, shrunk });
        }
        cases.push(RebalanceCaseResult {
            case,
            events,
            stats,
            violations,
        });
    }
    Ok(RebalanceSimReport { cases, repro })
}

/// Renders a range report as canonical JSON: fixed field order, no
/// floats, no ambient state — two runs with the same root must be
/// byte-identical. This is what the `e18_rebalance --smoke` golden
/// pins (together with the planted-bug section appended by
/// [`run_rebalance_smoke`]).
#[must_use]
pub fn render_rebalance_json(
    label: &str,
    config: &RebalanceSimConfig,
    report: &RebalanceSimReport,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"label\": \"{label}\",");
    let _ = writeln!(out, "  \"n\": {},", config.n);
    let _ = writeln!(out, "  \"nodes\": {},", config.nodes);
    let _ = writeln!(out, "  \"replication\": {},", config.replication);
    let _ = writeln!(out, "  \"shards\": {},", config.shards);
    let _ = writeln!(out, "  \"arrivals\": {},", config.arrivals);
    let _ = writeln!(out, "  \"routing\": \"{}\",", config.routing);
    let _ = writeln!(out, "  \"cases\": [");
    for (position, case) in report.cases.iter().enumerate() {
        let events: Vec<String> = case
            .events
            .iter()
            .map(|event| format!("\"{event}\""))
            .collect();
        let violations: Vec<String> = case
            .violations
            .iter()
            .map(|violation| format!("\"{violation}\""))
            .collect();
        let comma = if position + 1 < report.cases.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "    {{\"case\": {}, \"events\": [{}], \"offered\": {}, \"answered\": {}, \
             \"shed\": {}, \"promotions\": {}, \"failovers\": {}, \"stale_sheds\": {}, \
             \"epoch\": {}, \"p99\": {}, \"twin_p99\": {}, \"shed_permille\": {}, \
             \"twin_shed_permille\": {}, \"relieved\": {}, \"violations\": [{}]}}{comma}",
            case.case,
            events.join(", "),
            case.stats.offered,
            case.stats.answered,
            case.stats.shed,
            case.stats.promotions,
            case.stats.failovers,
            case.stats.stale_sheds,
            case.stats.final_epoch,
            case.stats.p99_ticks,
            case.stats.twin_p99_ticks,
            case.stats.shed_permille,
            case.stats.twin_shed_permille,
            case.stats.relieved,
            violations.join(", "),
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(
        out,
        "  \"total_violations\": {},",
        report.total_violations()
    );
    let _ = writeln!(
        out,
        "  \"hot_shard_relieved\": {},",
        report.hot_shard_relieved()
    );
    let _ = writeln!(
        out,
        "  \"repro\": {}",
        report.repro.as_ref().map_or_else(
            || "null".to_string(),
            |repro| format!(
                "{{\"case\": {}, \"events\": {}}}",
                repro.case,
                repro.shrunk.events.len()
            )
        )
    );
    let _ = write!(out, "}}");
    out
}

/// Cases the smoke run covers (CI diffs its JSON against the golden).
pub const E18_SMOKE_CASES: u64 = 10;

/// Hunts for the planted stale-router bug: runs the world under
/// `config.routing` over cases from 0 until a schedule violates
/// (bounded by `max_cases`), then shrinks it to a minimal repro.
///
/// # Errors
///
/// Propagates world construction and [`serve_cluster_traffic`] errors.
pub fn hunt_planted_rebalance_bug(
    root: &Seed,
    config: &RebalanceSimConfig,
    max_cases: u64,
) -> Result<Option<Repro>, LcaError> {
    let world = RebalanceWorld::build(root, config)?;
    for case in 0..max_cases {
        let events = generate_rebalance_schedule(root, case, config.nodes);
        let violations = world.violations_for(&events);
        if !violations.is_empty() {
            let shrunk = shrink(&events, |candidate| world.violations_for(candidate));
            return Ok(Some(Repro { case, shrunk }));
        }
    }
    Ok(None)
}

/// Runs the committed smoke for the `e18_rebalance --smoke` bin and
/// the golden test: [`E18_SMOKE_CASES`] cases under faithful routing,
/// plus the planted-bug section — the stale-epoch router hunted over
/// the same schedules and shrunk to its minimal repro.
///
/// # Errors
///
/// Propagates [`run_rebalance_range`] and
/// [`hunt_planted_rebalance_bug`] errors.
pub fn run_rebalance_smoke(root: &Seed) -> Result<String, LcaError> {
    let config = RebalanceSimConfig::default();
    let report = run_rebalance_range(root, &config, 0..E18_SMOKE_CASES)?;
    let faithful = render_rebalance_json("e18-smoke", &config, &report);

    let bug_config = RebalanceSimConfig {
        routing: RebalanceDiscipline::StaleEpoch,
        ..config
    };
    let repro = hunt_planted_rebalance_bug(root, &bug_config, E18_SMOKE_CASES)?;
    let planted = repro.map_or_else(
        || "null".to_string(),
        |repro| {
            let events: Vec<String> = repro
                .shrunk
                .events
                .iter()
                .map(|event| format!("\"{event}\""))
                .collect();
            let violations: Vec<String> = repro
                .shrunk
                .violations
                .iter()
                .map(|violation| format!("\"{violation}\""))
                .collect();
            format!(
                "{{\"routing\": \"{}\", \"case\": {}, \"events\": [{}], \
                 \"violations\": [{}]}}",
                bug_config.routing,
                repro.case,
                events.join(", "),
                violations.join(", "),
            )
        },
    );

    // Splice the planted-bug section before the closing brace so the
    // golden pins both halves of the acceptance criteria in one file.
    let body = faithful
        .strip_suffix('}')
        .expect("render_rebalance_json ends with a closing brace")
        .trim_end()
        .to_string();
    Ok(format!("{body},\n  \"planted\": {planted}\n}}"))
}
