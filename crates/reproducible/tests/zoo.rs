//! Integration tests: rMedian / rQuantile across a zoo of distribution
//! shapes, checked against exact CDFs — the statistical contract of
//! Theorems 2.7 and 4.5 in executable form.

use lcakp_reproducible::harness::{measure_reproducibility, DiscreteDist};
use lcakp_reproducible::{
    naive_quantile, rmedian, rquantile, Domain, RMedianConfig, RQuantileConfig, Seed,
};

fn zoo() -> Vec<(&'static str, DiscreteDist)> {
    vec![
        ("uniform", DiscreteDist::uniform(1 << 18)),
        (
            "bimodal-far",
            DiscreteDist::new(vec![(7, 0.5), (1 << 40, 0.5)]),
        ),
        (
            "three-atoms",
            DiscreteDist::new(vec![(100, 0.2), (200, 0.5), (300, 0.3)]),
        ),
        (
            "heavy-atom-plus-band",
            DiscreteDist::new(
                std::iter::once((5u128, 0.45))
                    .chain((0..500).map(|v| (1_000 + v, 0.0011)))
                    .collect(),
            ),
        ),
        (
            "geometric-tail",
            DiscreteDist::new(
                (0..50u128)
                    .map(|k| (1u128 << k, 0.5f64.powi(k as i32 + 1)))
                    .collect(),
            ),
        ),
    ]
}

/// Accuracy across the zoo at three quantiles: every output must be a
/// τ-approximate p-quantile of the *true* distribution.
#[test]
fn rquantile_is_accurate_across_the_zoo() {
    let tau = 0.06;
    for (name, dist) in zoo() {
        for &p in &[0.25f64, 0.5, 0.75] {
            for trial in 0..4u64 {
                let seed = Seed::from_entropy_u64(1_000 + trial);
                let mut rng = Seed::from_entropy_u64(2_000 + trial).rng();
                let sample = dist.sample_n(&mut rng, 30_000);
                let config = RQuantileConfig {
                    domain: Domain::new(41).unwrap(),
                    p,
                    tau,
                };
                let out = rquantile(&sample, &config, &seed).unwrap();
                assert!(
                    dist.is_tau_quantile(out, p, tau + 0.02),
                    "{name} p={p} trial={trial}: {out} not a τ-quantile \
                     (cdf≤ {:.3}, cdf≥ {:.3})",
                    dist.cdf_leq(out),
                    dist.cdf_geq(out)
                );
            }
        }
    }
}

/// Reproducibility across the zoo: rQuantile beats the naive quantile on
/// every shape (and by a wide margin on continuous-like ones).
#[test]
fn rquantile_beats_naive_on_every_shape() {
    let tau = 0.05;
    for (name, dist) in zoo() {
        let rq = measure_reproducibility(
            &dist,
            50_000,
            0.5,
            tau,
            12,
            Seed::from_entropy_u64(7),
            |sample, seed| {
                let config = RQuantileConfig {
                    domain: Domain::new(41).unwrap(),
                    p: 0.5,
                    tau,
                };
                rquantile(sample, &config, seed).unwrap()
            },
        );
        let naive = measure_reproducibility(
            &dist,
            50_000,
            0.5,
            tau,
            12,
            Seed::from_entropy_u64(8),
            |sample, _| naive_quantile(sample, 0.5),
        );
        assert!(
            rq.agreement_rate() >= naive.agreement_rate(),
            "{name}: rq {} < naive {}",
            rq.agreement_rate(),
            naive.agreement_rate()
        );
        assert!(
            rq.accuracy_rate() >= 0.75,
            "{name}: accuracy collapsed: {rq}"
        );
    }
}

/// Atoms are fixed points: when one value holds a majority of the mass,
/// every run must return exactly it.
#[test]
fn majority_atom_is_always_returned() {
    let dist = DiscreteDist::new(vec![(777, 0.7), (1, 0.15), (1 << 30, 0.15)]);
    for trial in 0..10u64 {
        let seed = Seed::from_entropy_u64(trial);
        let mut rng = Seed::from_entropy_u64(100 + trial).rng();
        let sample = dist.sample_n(&mut rng, 20_000);
        let config = RMedianConfig {
            domain: Domain::new(31).unwrap(),
            tau: 0.05,
        };
        assert_eq!(rmedian(&sample, &config, &seed).unwrap(), 777);
    }
}

/// rQuantile is monotone in p on a fixed sample (up to the τ tolerance
/// enforced by construction: we assert weak monotonicity of outputs
/// after sorting by p).
#[test]
fn quantiles_are_essentially_monotone_in_p() {
    let dist = DiscreteDist::uniform(1 << 16);
    let mut rng = Seed::from_entropy_u64(3).rng();
    let sample = dist.sample_n(&mut rng, 40_000);
    let seed = Seed::from_entropy_u64(4);
    let quantile = |p: f64| {
        let config = RQuantileConfig {
            domain: Domain::new(16).unwrap(),
            p,
            tau: 0.04,
        };
        rquantile(&sample, &config, &seed).unwrap()
    };
    let q10 = quantile(0.1);
    let q50 = quantile(0.5);
    let q90 = quantile(0.9);
    // Allow τ-level inversions in value space: compare via true CDF.
    assert!(dist.cdf_leq(q10) < dist.cdf_leq(q50) + 0.08);
    assert!(dist.cdf_leq(q50) < dist.cdf_leq(q90) + 0.08);
    assert!(q90 > q10);
}

/// Samples whose values sit at the extreme ends of the domain do not
/// overflow or wrap during snapping.
#[test]
fn domain_edges_are_safe() {
    let domain = Domain::new(63).unwrap();
    let edge = domain.max_value();
    let sample: Vec<u128> = (0..5_000)
        .map(|index| if index % 2 == 0 { 0 } else { edge })
        .collect();
    let config = RMedianConfig { domain, tau: 0.1 };
    for trial in 0..5u64 {
        let out = rmedian(&sample, &config, &Seed::from_entropy_u64(trial)).unwrap();
        assert!(domain.contains(out), "out {out} escaped the domain");
    }
}
