//! Reproducible approximate median — the workspace's stand-in for
//! [ILPS22, Theorem 4.2] (paper Theorem 2.7).
//!
//! # Algorithm (shifted-grid construction, `DESIGN.md` §3)
//!
//! Given a sample from a distribution `D` over `[0, 2^d)` and the shared
//! seed `r`:
//!
//! 1. **Base case** (`d ≤ 8`, a constant-size domain): draw a random
//!    threshold `θ ∈ [1/2 − τ/2, 1/2 + τ/2]` from `r` and return the
//!    smallest domain element whose empirical CDF reaches `θ`. Two runs
//!    disagree only if their empirical CDFs straddle `θ` at the output —
//!    probability `O(γ/τ)` for CDF error `γ`.
//! 2. **Recursive case**: draw a random grid offset `s ∈ [0, 2^d)` from
//!    `r`. Estimate the *fluctuation scale* of the empirical median: split
//!    half the sample into batches, take batch medians, and record for
//!    each batch pair the bit-scale at which the two medians separate on
//!    the shifted dyadic grid (`bitlen((a+s) ⊕ (b+s))`). These scales are
//!    i.i.d. draws from a distribution over the domain `[0, d]` —
//!    **exponentially smaller** than `[0, 2^d)` — and the grid scale `i*`
//!    is chosen as a *recursive reproducible median* of them (plus a
//!    safety margin). This `2^d → d` compression is what gives the
//!    `log* |X|` recursion depth of [ILPS22].
//! 3. **Snap**: compute the empirical median `m̂` of the other half and
//!    output the centre of the scale-`i*` shifted grid cell containing
//!    `m̂`. Two runs share `s` and (with probability `1 − ρ_rec`) `i*`;
//!    their `m̂`s differ by less than one cell width by the choice of
//!    `i*`, so they snap to the same centre.
//! 4. **Scale descent** (accuracy guard): accept the snapped point only
//!    if it is a θ-approximate median of the *empirical* distribution —
//!    `#{x ≤ out}` and `#{x ≥ out}` both at least `(1/2 − θ)·n`, with a
//!    *shared random* slack `θ ∈ [τ/4, τ/2]` — otherwise halve the cell
//!    width and re-snap. In the limit `i = 0` the output is `m̂` itself,
//!    so the loop terminates and the output always satisfies Definition
//!    2.6 empirically; the random slack gives hysteresis so that two
//!    runs rarely descend different amounts.
//!
//! Reproducibility and accuracy are validated empirically by the tests
//! below and experiment E7, as promised in `DESIGN.md`.

use crate::domain::Domain;
use crate::ReproducibleError;
use lcakp_oracle::Seed;
use rand::Rng;

/// Domain width at or below which the base case runs.
const BASE_BITS: u32 = 8;
/// Extra bit-scales added on top of the recursively selected scale, to
/// absorb the factor between batch-median and full-median fluctuations.
const SCALE_MARGIN: u32 = 3;
/// Number of batches used for the scale statistic.
const BATCHES: usize = 32;
/// Accuracy used for the recursive scale-selection call.
const SCALE_TAU: f64 = 0.25;

/// Configuration of a reproducible-median call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RMedianConfig {
    /// The finite ordered domain the sample lives in.
    pub domain: Domain,
    /// Target accuracy τ ∈ (0, 1/2]: the output is a τ-approximate median
    /// (Definition 2.6 of the paper).
    pub tau: f64,
}

/// Computes a ρ-reproducible τ-approximate median of the distribution the
/// sample was drawn from.
///
/// * `sample` — fresh i.i.d. draws (the per-run channel). Size it with
///   [`crate::SampleBudget`].
/// * `seed` — the shared randomness `r` (the reproducibility channel).
///   Two runs with the same seed and independent samples return the same
///   value with high probability.
///
/// # Errors
///
/// * [`ReproducibleError::EmptySample`] for an empty sample;
/// * [`ReproducibleError::ValueOutOfDomain`] if a sample value exceeds the
///   domain;
/// * [`ReproducibleError::InvalidParameter`] if `tau ∉ (0, 1/2]`.
///
/// ```
/// use lcakp_reproducible::{rmedian, Domain, RMedianConfig, Seed};
/// # fn main() -> Result<(), lcakp_reproducible::ReproducibleError> {
/// let config = RMedianConfig { domain: Domain::new(16)?, tau: 0.05 };
/// let seed = Seed::from_entropy_u64(1);
/// let sample: Vec<u128> = (0..10_000).map(|i| (i * 37) % 1000).collect();
/// let median = rmedian(&sample, &config, &seed)?;
/// // ~uniform over [0, 1000): any τ-approximate median is near 500.
/// assert!((400..600).contains(&(median as i64)));
/// # Ok(())
/// # }
/// ```
pub fn rmedian(
    sample: &[u128],
    config: &RMedianConfig,
    seed: &Seed,
) -> Result<u128, ReproducibleError> {
    if !(config.tau > 0.0 && config.tau <= 0.5) {
        return Err(ReproducibleError::InvalidParameter {
            name: "tau",
            value: config.tau,
        });
    }
    config.domain.check_sample(sample)?;
    Ok(solve(
        sample,
        config.domain.bits(),
        config.tau,
        0.5,
        seed,
        0,
    ))
}

/// Recursive worker. `raw` keeps the caller's (i.i.d.) order: the batch
/// statistic needs genuinely random batches, which a sorted sample would
/// destroy. `target` is the quantile to aim for: 1/2 at the top level,
/// an *upper* quantile for the internal scale selection (a conservative,
/// stable choice when the scale distribution is bimodal — larger cells
/// only cost descent steps, which the accuracy guard bounds).
// lcakp-lint: recursion-bound(log* bits) reason="each recursive call compresses the domain from 2^bits values to bits+2 scale codes (Algorithm 1's 2^d -> d step), so the depth is the iterated logarithm of the domain size"
fn solve(raw: &[u128], bits: u32, tau: f64, target: f64, seed: &Seed, depth: u64) -> u128 {
    debug_assert!(!raw.is_empty());
    // lcakp-lint: allow(D011) reason="sorting needs an owned copy; per-level samples shrink geometrically from the budget-bounded root sample (arena pooling tracked in ROADMAP)"
    let mut sorted = raw.to_vec();
    sorted.sort_unstable();
    if bits <= BASE_BITS || raw.len() < 64 {
        return base_case(&sorted, tau, target, seed, depth);
    }

    let mask = (1u128 << bits) - 1;
    let shift = seed.derive("rmedian/shift", depth).rng().gen::<u128>() & mask;

    // Halves (by parity of arrival index, so both are i.i.d. samples):
    // A estimates the fluctuation scale, B the median position.
    // lcakp-lint: allow(D011) reason="half-split of the budget-bounded sample (arena pooling tracked in ROADMAP)"
    let half_a: Vec<u128> = raw.iter().copied().step_by(2).collect();
    // lcakp-lint: allow(D011) reason="half-split of the budget-bounded sample (arena pooling tracked in ROADMAP)"
    let mut half_b: Vec<u128> = raw.iter().copied().skip(1).step_by(2).collect();
    if half_b.is_empty() {
        half_b.clone_from(&half_a);
    }
    half_b.sort_unstable();

    // Batch medians of A → pairwise separation scales. Each batch is a
    // strided subsequence of the raw order (an i.i.d. subsample); the
    // separation of two independent batch medians upper-bounds the
    // fluctuation of the (larger) half-B median, conservatively.
    let batch_count = BATCHES.min(half_a.len()).max(2);
    let batch_medians: Vec<u128> = (0..batch_count)
        .map(|batch| {
            let mut members: Vec<u128> = half_a
                .iter()
                .copied()
                .skip(batch)
                .step_by(batch_count)
                // lcakp-lint: allow(D011) reason="one strided batch of half A; batches partition the budget-bounded sample"
                .collect();
            members.sort_unstable();
            members[(members.len() - 1) / 2]
        })
        // lcakp-lint: allow(D011) reason="at most BATCHES batch medians - a compile-time constant"
        .collect();
    let scales: Vec<u128> = batch_medians
        .chunks_exact(2)
        .map(|pair| bit_length((pair[0] + shift) ^ (pair[1] + shift)) as u128)
        // lcakp-lint: allow(D011) reason="at most BATCHES/2 separation scales - a compile-time constant"
        .collect();
    // lcakp-lint: allow(D011) reason="a one-element fallback vector for the degenerate empty-scales case"
    let scales = if scales.is_empty() { vec![0] } else { scales };

    // Recursive reproducible median over the scale domain [0, bits+1] ⊆
    // [0, 2^7): the 2^d → d compression that yields log* depth.
    let selected = solve(
        &scales,
        7,
        SCALE_TAU,
        0.75,
        &seed.derive("rmedian/scale", depth),
        depth + 1,
    );
    let mut scale = (u32::try_from(selected).unwrap_or(bits) + SCALE_MARGIN).min(bits);

    // Empirical median of B.
    let m_hat = half_b[(half_b.len() - 1) / 2];

    // Scale descent with a shared random slack θ ∈ [τ/4, τ/2]: accept the
    // snapped point only if it is an empirical θ-approximate median of
    // the full sample (Definition 2.6, both sides), else halve the cell.
    // At scale 0 the output is m̂ itself, which always qualifies — so the
    // loop terminates and the accuracy contract holds by construction up
    // to the empirical-CDF error.
    let gap_fraction: f64 = seed.derive("rmedian/gap", depth).rng().gen();
    let theta = tau * (0.25 + 0.25 * gap_fraction);
    loop {
        let out = snap(m_hat, shift, scale, mask);
        if is_empirical_median(&sorted, out, theta) || scale == 0 {
            return out;
        }
        scale -= 1;
    }
}

/// Whether `v` is a θ-approximate median of the *empirical* distribution:
/// `#{x ≤ v} ≥ (1/2 − θ)·n` and `#{x ≥ v} ≥ (1/2 − θ)·n`.
fn is_empirical_median(sorted: &[u128], v: u128, theta: f64) -> bool {
    let n = sorted.len() as f64;
    let leq = sorted.partition_point(|&x| x <= v) as f64;
    let geq = n - sorted.partition_point(|&x| x < v) as f64;
    let floor = (0.5 - theta) * n;
    leq >= floor && geq >= floor
}

/// Base case: random-threshold empirical quantile over a constant-size
/// domain, centered on `target`.
fn base_case(sorted: &[u128], tau: f64, target: f64, seed: &Seed, depth: u64) -> u128 {
    let fraction: f64 = seed.derive("rmedian/base-theta", depth).rng().gen();
    let theta = target + (fraction - 0.5) * tau;
    let rank = ((theta * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Centre of the scale-`i` shifted grid cell containing `value`, clamped
/// into the domain.
fn snap(value: u128, shift: u128, scale: u32, mask: u128) -> u128 {
    if scale == 0 {
        return value;
    }
    let shifted = value + shift;
    let cell = shifted >> scale;
    let centre = (cell << scale) + (1u128 << (scale - 1));
    centre.saturating_sub(shift).min(mask)
}

/// Number of bits needed to write `x` (0 for 0).
fn bit_length(x: u128) -> u32 {
    128 - x.leading_zeros()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha12Rng;

    fn config(bits: u32, tau: f64) -> RMedianConfig {
        RMedianConfig {
            domain: Domain::new(bits).unwrap(),
            tau,
        }
    }

    fn uniform_sample(rng: &mut ChaCha12Rng, n: usize, range: u128) -> Vec<u128> {
        (0..n).map(|_| rng.gen_range(0..range)).collect()
    }

    #[test]
    fn validates_inputs() {
        let seed = Seed::from_entropy_u64(0);
        assert!(matches!(
            rmedian(&[], &config(8, 0.1), &seed),
            Err(ReproducibleError::EmptySample)
        ));
        assert!(matches!(
            rmedian(&[300], &config(8, 0.1), &seed),
            Err(ReproducibleError::ValueOutOfDomain { .. })
        ));
        assert!(matches!(
            rmedian(&[1], &config(8, 0.0), &seed),
            Err(ReproducibleError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn point_mass_returns_the_point() {
        let seed = Seed::from_entropy_u64(5);
        let sample = vec![42u128; 5000];
        for bits in [8, 16, 32, 64] {
            assert_eq!(rmedian(&sample, &config(bits, 0.05), &seed).unwrap(), 42);
        }
    }

    #[test]
    fn deterministic_given_sample_and_seed() {
        let seed = Seed::from_entropy_u64(9);
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let sample = uniform_sample(&mut rng, 4000, 1 << 20);
        let a = rmedian(&sample, &config(32, 0.05), &seed).unwrap();
        let b = rmedian(&sample, &config(32, 0.05), &seed).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn accuracy_on_uniform() {
        // τ = 0.05 over U[0, 2^20): output's CDF must be in [0.45, 0.55],
        // i.e. the value in [0.45, 0.55]·2^20 (within sampling noise).
        for trial in 0..10u64 {
            let seed = Seed::from_entropy_u64(trial);
            let mut rng = ChaCha12Rng::seed_from_u64(trial + 100);
            let sample = uniform_sample(&mut rng, 20_000, 1 << 20);
            let out = rmedian(&sample, &config(20, 0.05), &seed).unwrap();
            let cdf = out as f64 / (1u128 << 20) as f64;
            assert!(
                (0.43..=0.57).contains(&cdf),
                "trial {trial}: cdf(out) = {cdf}"
            );
        }
    }

    #[test]
    fn accuracy_near_heavy_atom() {
        // 40% of mass at 1000, the rest uniform over [2^19, 2^20): the
        // median sits in the uniform part near its 1/6 point. The output
        // must not land "inside" the atom's shadow: its CDF must stay in
        // [0.5 − τ, 0.5 + τ] up to sampling noise.
        for trial in 0..5u64 {
            let seed = Seed::from_entropy_u64(trial);
            let mut rng = ChaCha12Rng::seed_from_u64(trial + 7);
            let sample: Vec<u128> = (0..30_000)
                .map(|_| {
                    if rng.gen_bool(0.4) {
                        1000u128
                    } else {
                        rng.gen_range((1u128 << 19)..(1u128 << 20))
                    }
                })
                .collect();
            let out = rmedian(&sample, &config(20, 0.05), &seed).unwrap();
            // CDF(out) = 0.4 + 0.6·position within the uniform band.
            let cdf = if out < (1 << 19) {
                0.4
            } else {
                0.4 + 0.6 * ((out - (1 << 19)) as f64 / (1u128 << 19) as f64)
            };
            assert!(
                (0.42..=0.58).contains(&cdf),
                "trial {trial}: out = {out}, cdf = {cdf}"
            );
        }
    }

    #[test]
    fn reproducibility_rate_on_fresh_samples() {
        // Same seed, independent samples → same output, for most seeds.
        let mut agreements = 0;
        let trials = 40;
        for trial in 0..trials {
            let seed = Seed::from_entropy_u64(trial);
            let mut rng_a = ChaCha12Rng::seed_from_u64(1_000 + trial);
            let mut rng_b = ChaCha12Rng::seed_from_u64(2_000 + trial);
            let sample_a = uniform_sample(&mut rng_a, 60_000, 1 << 30);
            let sample_b = uniform_sample(&mut rng_b, 60_000, 1 << 30);
            let out_a = rmedian(&sample_a, &config(30, 0.05), &seed).unwrap();
            let out_b = rmedian(&sample_b, &config(30, 0.05), &seed).unwrap();
            if out_a == out_b {
                agreements += 1;
            }
        }
        assert!(
            agreements * 4 >= trials * 3,
            "reproducibility too low: {agreements}/{trials}"
        );
    }

    #[test]
    fn base_case_is_reproducible_on_small_domains() {
        let mut agreements = 0;
        let trials = 50;
        for trial in 0..trials {
            let seed = Seed::from_entropy_u64(trial);
            let mut rng_a = ChaCha12Rng::seed_from_u64(3_000 + trial);
            let mut rng_b = ChaCha12Rng::seed_from_u64(4_000 + trial);
            // A coarse domain (16 atoms): the random-threshold base case
            // is reproducible when atoms are heavy relative to sampling
            // noise — exactly the regime the recursion reduces to.
            let sample_a = uniform_sample(&mut rng_a, 20_000, 16);
            let sample_b = uniform_sample(&mut rng_b, 20_000, 16);
            let out_a = rmedian(&sample_a, &config(4, 0.1), &seed).unwrap();
            let out_b = rmedian(&sample_b, &config(4, 0.1), &seed).unwrap();
            if out_a == out_b {
                agreements += 1;
            }
        }
        assert!(
            agreements * 50 >= trials * 42,
            "base-case reproducibility too low: {agreements}/{trials}"
        );
    }

    #[test]
    fn two_point_distribution_returns_an_endpoint_region() {
        // Half the mass at 10, half at 1_000_000: any value v with
        // P[X ≤ v] ≥ 1/2 − τ and P[X ≥ v] ≥ 1/2 − τ is valid — that is,
        // anything in [10, 1_000_000].
        let seed = Seed::from_entropy_u64(11);
        let mut rng = ChaCha12Rng::seed_from_u64(42);
        let sample: Vec<u128> = (0..10_000)
            .map(|_| if rng.gen_bool(0.5) { 10 } else { 1_000_000 })
            .collect();
        let out = rmedian(&sample, &config(32, 0.1), &seed).unwrap();
        assert!((10..=1_000_000).contains(&out), "out = {out}");
    }

    #[test]
    fn bit_length_is_correct() {
        assert_eq!(bit_length(0), 0);
        assert_eq!(bit_length(1), 1);
        assert_eq!(bit_length(7), 3);
        assert_eq!(bit_length(8), 4);
    }

    #[test]
    fn snap_is_identity_at_scale_zero() {
        assert_eq!(snap(77, 12345, 0, u128::MAX), 77);
    }

    #[test]
    fn snap_clamps_into_domain() {
        let mask = (1u128 << 8) - 1;
        let out = snap(255, 0, 8, mask);
        assert!(out <= mask);
        let out = snap(0, 200, 8, mask);
        assert!(out <= mask);
    }

    #[test]
    fn empirical_median_check_is_two_sided() {
        let sorted = vec![1u128, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert!(is_empirical_median(&sorted, 5, 0.1));
        assert!(is_empirical_median(&sorted, 6, 0.1));
        assert!(!is_empirical_median(&sorted, 1, 0.1));
        assert!(!is_empirical_median(&sorted, 10, 0.1));
        // A value past every sample fails the ≥ side even though the ≤
        // side is saturated.
        assert!(!is_empirical_median(&sorted, 11, 0.1));
        // Heavy atom: the point just past the atom fails.
        let atom = vec![5u128; 8]
            .into_iter()
            .chain([9, 10])
            .collect::<Vec<_>>();
        let mut atom = atom;
        atom.sort_unstable();
        assert!(is_empirical_median(&atom, 5, 0.1));
        assert!(!is_empirical_median(&atom, 6, 0.1));
    }
}
