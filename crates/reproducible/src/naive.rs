//! The non-reproducible baseline: a plain empirical quantile.
//!
//! Section 4.1 of the paper observes that using raw sampled quantiles for
//! the efficiency thresholds "will lead to inconsistent answers" — even
//! small variations in the thresholds move the greedy cut-off and break
//! LCA consistency. This function exists so that experiment E11 can
//! demonstrate exactly that collapse by swapping it in for
//! [`crate::rquantile`].

/// The empirical `p`-quantile of the sample: the value at rank
/// `⌈p·n⌉` (1-based) of the sorted sample, clamped to the ends.
///
/// Deterministic in the sample, but **not** reproducible across fresh
/// samples: two samples from the same distribution generally produce
/// different exact values.
///
/// # Panics
///
/// Panics if the sample is empty.
///
/// ```
/// use lcakp_reproducible::naive_quantile;
/// let sample = vec![10u128, 20, 30, 40, 50];
/// assert_eq!(naive_quantile(&sample, 0.5), 30);
/// assert_eq!(naive_quantile(&sample, 0.0), 10);
/// assert_eq!(naive_quantile(&sample, 1.0), 50);
/// ```
pub fn naive_quantile(sample: &[u128], p: f64) -> u128 {
    assert!(
        !sample.is_empty(),
        "naive_quantile requires a nonempty sample"
    );
    // lcakp-lint: allow(D011) reason="sorting needs an owned copy; the sample is budget-bounded (at most n_rq keys per query)"
    let mut sorted = sample.to_vec();
    sorted.sort_unstable();
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_expected_ranks() {
        let sample = vec![5u128, 1, 3, 2, 4];
        assert_eq!(naive_quantile(&sample, 0.2), 1);
        assert_eq!(naive_quantile(&sample, 0.4), 2);
        assert_eq!(naive_quantile(&sample, 0.6), 3);
        assert_eq!(naive_quantile(&sample, 0.9), 5);
    }

    #[test]
    fn clamps_out_of_range_p() {
        let sample = vec![7u128];
        assert_eq!(naive_quantile(&sample, -0.5), 7);
        assert_eq!(naive_quantile(&sample, 2.0), 7);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_sample_panics() {
        naive_quantile(&[], 0.5);
    }

    #[test]
    fn is_not_reproducible_across_fresh_samples() {
        // The motivating defect: two fresh uniform samples almost never
        // share their exact empirical quantile.
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha12Rng::seed_from_u64(1);
        let mut disagreements = 0;
        for _ in 0..20 {
            let a: Vec<u128> = (0..1000).map(|_| rng.gen_range(0..1u128 << 40)).collect();
            let b: Vec<u128> = (0..1000).map(|_| rng.gen_range(0..1u128 << 40)).collect();
            if naive_quantile(&a, 0.5) != naive_quantile(&b, 0.5) {
                disagreements += 1;
            }
        }
        assert!(disagreements >= 19);
    }
}
