//! Reproducible statistics, after Impagliazzo, Lei, Pitassi and Sorrell
//! ("Reproducibility in Learning", STOC 2022) — the consistency engine of
//! the paper's `LCA-KP` algorithm.
//!
//! A randomized algorithm `A` with sample access to a distribution `D` is
//! **ρ-reproducible** (Definition 2.5 of the paper) if two runs on
//! *independent fresh samples* but the *same internal randomness* return
//! the identical output with probability at least `1 − ρ`. The paper uses
//! a reproducible approximate median ([ILPS22, Theorem 4.2]) generalized
//! to arbitrary quantiles (its Algorithm 1 / Theorem 4.5) to make the
//! sampling-based efficiency thresholds of `LCA-KP` consistent across
//! queries.
//!
//! # What is implemented
//!
//! * [`rmedian`] — a reproducible τ-approximate median over a finite
//!   ordered domain `[0, 2^d)`. The implementation is the *shifted-grid*
//!   construction described in `DESIGN.md` §3: the output is snapped to a
//!   randomly offset grid whose scale is itself selected by a recursive
//!   reproducible-median call over the exponentially smaller domain of
//!   bit-scales `[0, d]` — the `2^d → d` compression that gives the
//!   `log* |X|` recursion depth of [ILPS22]. A gap-descent refinement
//!   (with a shared random threshold) guarantees the τ-accuracy contract
//!   even near heavy atoms.
//! * [`rquantile`] — Algorithm 1 of the paper: reduce the `p`-quantile to
//!   a median by padding the sample with `(1−p)·n` copies of `−∞` and
//!   `p·n` copies of `+∞` over an extended domain.
//! * [`naive_quantile`] — the non-reproducible empirical quantile, kept as
//!   the ablation baseline (experiment E11: the paper's Section 4.1
//!   observes that using it directly "will lead to inconsistent answers").
//! * [`SampleBudget`] — the paper's sample-complexity formulas
//!   (Theorem 2.7, Theorem 4.5) as executable code, plus the calibrated
//!   policy used for runnable experiments (`DESIGN.md` §3).
//! * [`harness`] — estimators for reproducibility rates and accuracy,
//!   used by tests and experiment E7.
//!
//! # The two randomness channels
//!
//! Every function here takes the sample (fresh i.i.d. channel) and a
//! [`Seed`] (shared channel) separately; reproducibility statements are
//! always "same seed, fresh samples".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod budget;
mod domain;
mod error;
pub mod harness;
mod naive;
mod rmedian;
mod rquantile;

pub use budget::{ReproParams, SampleBudget};
pub use domain::{log_star, log_star_of_bits, Domain};
pub use error::ReproducibleError;
pub use lcakp_oracle::Seed;
pub use naive::naive_quantile;
pub use rmedian::{rmedian, RMedianConfig};
pub use rquantile::{rquantile, RQuantileConfig};
