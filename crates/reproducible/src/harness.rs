//! Measurement harness for reproducibility (Definition 2.5) and
//! τ-approximation accuracy (Definition 2.6) — the engine behind
//! experiment E7 and the statistical tests of this crate.

use lcakp_oracle::Seed;
use rand::Rng;
use rand_chacha::ChaCha12Rng;
use std::collections::BTreeMap;
use std::fmt;

/// A finite discrete distribution with exact CDF queries — the ground
/// truth against which τ-approximation is checked.
#[derive(Debug, Clone, PartialEq)]
pub struct DiscreteDist {
    /// `(value, mass)` pairs, sorted by value, masses positive and
    /// summing to ~1.
    atoms: Vec<(u128, f64)>,
    /// `cumulative[i] = Σ_{j ≤ i} mass_j` — sampling is a binary search.
    cumulative: Vec<f64>,
}

impl DiscreteDist {
    /// Builds a distribution from `(value, mass)` atoms. Masses are
    /// normalized to sum to 1; zero-mass atoms are dropped.
    ///
    /// # Panics
    ///
    /// Panics if no atom has positive mass.
    pub fn new(mut atoms: Vec<(u128, f64)>) -> Self {
        atoms.retain(|&(_, mass)| mass > 0.0);
        assert!(!atoms.is_empty(), "distribution needs positive mass");
        atoms.sort_by_key(|&(value, _)| value);
        let total: f64 = atoms.iter().map(|&(_, mass)| mass).sum();
        let mut running = 0.0;
        let mut cumulative = Vec::with_capacity(atoms.len());
        for atom in &mut atoms {
            atom.1 /= total;
            running += atom.1;
            cumulative.push(running);
        }
        DiscreteDist { atoms, cumulative }
    }

    /// The uniform distribution over `0..count`.
    pub fn uniform(count: u128) -> Self {
        assert!(count > 0);
        let mass = 1.0 / count as f64;
        DiscreteDist::new((0..count).map(|value| (value, mass)).collect())
    }

    /// `Pr[X ≤ v]`, over the atoms (binary search on the support).
    pub fn cdf_leq(&self, v: u128) -> f64 {
        let index = self.atoms.partition_point(|&(value, _)| value <= v);
        if index == 0 {
            0.0
        } else {
            self.cumulative[index - 1]
        }
    }

    /// `Pr[X ≥ v]`, over the atoms.
    pub fn cdf_geq(&self, v: u128) -> f64 {
        let index = self.atoms.partition_point(|&(value, _)| value < v);
        if index == 0 {
            1.0
        } else {
            1.0 - self.cumulative[index - 1]
        }
    }

    /// Whether `v` is a τ-approximate `p`-quantile:
    /// `Pr[X ≤ v] ≥ p − τ` and `Pr[X ≥ v] ≥ 1 − p − τ`
    /// (Definition 2.6, generalized from the median).
    pub fn is_tau_quantile(&self, v: u128, p: f64, tau: f64) -> bool {
        self.cdf_leq(v) >= p - tau && self.cdf_geq(v) >= 1.0 - p - tau
    }

    /// Draws one value (binary search over the cumulative masses).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u128 {
        let roll: f64 = rng.gen();
        let index = self
            .cumulative
            .partition_point(|&mass| mass <= roll)
            .min(self.atoms.len() - 1);
        self.atoms[index].0
    }

    /// Draws `n` i.i.d. values.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<u128> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// The atoms, sorted by value.
    pub fn atoms(&self) -> &[(u128, f64)] {
        &self.atoms
    }
}

/// Result of a reproducibility measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproReport {
    /// Number of (seed, sample-pair) trials.
    pub trials: u32,
    /// Trials whose two runs agreed exactly.
    pub agreements: u32,
    /// Trials whose outputs were τ-accurate (both runs).
    pub accurate: u32,
    /// Observed distinct outputs and their multiplicities.
    pub output_counts: BTreeMap<u128, u32>,
}

impl ReproReport {
    /// Empirical reproducibility rate `Pr[A(s⃗₁; r) = A(s⃗₂; r)]`.
    pub fn agreement_rate(&self) -> f64 {
        if self.trials == 0 {
            return 1.0;
        }
        self.agreements as f64 / self.trials as f64
    }

    /// Empirical accuracy rate (fraction of runs that were τ-accurate).
    pub fn accuracy_rate(&self) -> f64 {
        if self.trials == 0 {
            return 1.0;
        }
        self.accurate as f64 / self.trials as f64
    }
}

impl fmt::Display for ReproReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "agreement={:.3} accuracy={:.3} distinct_outputs={} trials={}",
            self.agreement_rate(),
            self.accuracy_rate(),
            self.output_counts.len(),
            self.trials
        )
    }
}

/// Measures reproducibility and accuracy of a quantile-like algorithm
/// over a known distribution.
///
/// For each trial `t` the harness derives a fresh shared seed, draws two
/// independent samples of size `sample_size` from `dist`, runs
/// `algorithm(sample, seed)` on each, and records agreement (Definition
/// 2.5) plus τ-accuracy of both outputs at quantile `p`.
pub fn measure_reproducibility<A>(
    dist: &DiscreteDist,
    sample_size: usize,
    p: f64,
    tau: f64,
    trials: u32,
    base_seed: Seed,
    mut algorithm: A,
) -> ReproReport
where
    A: FnMut(&[u128], &Seed) -> u128,
{
    use rand::SeedableRng;
    let mut agreements = 0;
    let mut accurate = 0;
    let mut output_counts: BTreeMap<u128, u32> = BTreeMap::new();
    for trial in 0..trials {
        let seed = base_seed.derive("harness/trial-seed", trial as u64);
        let mut rng_a = ChaCha12Rng::seed_from_u64(0x5eed_0000 + 2 * trial as u64);
        let mut rng_b = ChaCha12Rng::seed_from_u64(0x5eed_0001 + 2 * trial as u64);
        let sample_a = dist.sample_n(&mut rng_a, sample_size);
        let sample_b = dist.sample_n(&mut rng_b, sample_size);
        let out_a = algorithm(&sample_a, &seed);
        let out_b = algorithm(&sample_b, &seed);
        if out_a == out_b {
            agreements += 1;
        }
        if dist.is_tau_quantile(out_a, p, tau) && dist.is_tau_quantile(out_b, p, tau) {
            accurate += 1;
        }
        *output_counts.entry(out_a).or_insert(0) += 1;
        *output_counts.entry(out_b).or_insert(0) += 1;
    }
    ReproReport {
        trials,
        agreements,
        accurate,
        output_counts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{naive_quantile, rquantile, Domain, RQuantileConfig};

    #[test]
    fn dist_cdf_queries() {
        let dist = DiscreteDist::new(vec![(10, 0.25), (20, 0.5), (30, 0.25)]);
        assert!((dist.cdf_leq(10) - 0.25).abs() < 1e-12);
        assert!((dist.cdf_leq(25) - 0.75).abs() < 1e-12);
        assert!((dist.cdf_geq(20) - 0.75).abs() < 1e-12);
        assert!((dist.cdf_geq(31) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn dist_normalizes_masses() {
        let dist = DiscreteDist::new(vec![(1, 2.0), (2, 2.0)]);
        assert!((dist.cdf_leq(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tau_quantile_check() {
        let dist = DiscreteDist::uniform(100);
        assert!(dist.is_tau_quantile(50, 0.5, 0.05));
        assert!(!dist.is_tau_quantile(90, 0.5, 0.05));
        assert!(dist.is_tau_quantile(90, 0.9, 0.05));
    }

    #[test]
    fn sampling_matches_distribution_roughly() {
        let dist = DiscreteDist::new(vec![(0, 0.8), (1, 0.2)]);
        let mut rng = Seed::from_entropy_u64(4).rng();
        let sample = dist.sample_n(&mut rng, 10_000);
        let zeros = sample.iter().filter(|&&v| v == 0).count();
        assert!((7_600..8_400).contains(&zeros), "zeros = {zeros}");
    }

    #[test]
    fn harness_separates_reproducible_from_naive() {
        let dist = DiscreteDist::uniform(1 << 20);
        let tau = 0.05;
        let reproducible_report = measure_reproducibility(
            &dist,
            40_000,
            0.5,
            tau,
            15,
            Seed::from_entropy_u64(1),
            |sample, seed| {
                let config = RQuantileConfig {
                    domain: Domain::new(20).unwrap(),
                    p: 0.5,
                    tau,
                };
                rquantile(sample, &config, seed).unwrap()
            },
        );
        let naive_report = measure_reproducibility(
            &dist,
            40_000,
            0.5,
            tau,
            15,
            Seed::from_entropy_u64(2),
            |sample, _| naive_quantile(sample, 0.5),
        );
        assert!(
            reproducible_report.agreement_rate() > naive_report.agreement_rate(),
            "rquantile {} vs naive {}",
            reproducible_report,
            naive_report
        );
        assert!(naive_report.agreement_rate() < 0.2);
        assert!(reproducible_report.accuracy_rate() >= 0.9);
    }

    #[test]
    fn report_rates_empty_is_one() {
        let report = ReproReport {
            trials: 0,
            agreements: 0,
            accurate: 0,
            output_counts: BTreeMap::new(),
        };
        assert_eq!(report.agreement_rate(), 1.0);
        assert_eq!(report.accuracy_rate(), 1.0);
    }

    #[test]
    fn report_display() {
        let report = ReproReport {
            trials: 2,
            agreements: 1,
            accurate: 2,
            output_counts: BTreeMap::new(),
        };
        assert!(report.to_string().contains("agreement=0.500"));
    }
}
