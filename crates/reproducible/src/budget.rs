//! Sample-complexity policies.
//!
//! The paper's formulas (Theorem 2.7 for rMedian, Theorem 4.5 for
//! rQuantile) have enormous constants at practical parameters — e.g. at
//! ε = 1/10 the `LCA-KP` parameterization sets τ = ε²/5 = 1/500, and
//! `(12/τ²)^{log*|X|+1}` alone is astronomically large. The library
//! therefore exposes two policies (`DESIGN.md` §3):
//!
//! * [`SampleBudget::Theoretical`] — the paper's formulas verbatim
//!   (saturating arithmetic); used to *report* the theoretical curve in
//!   experiment E4/E7 and to unit-test the formulas' shape.
//! * [`SampleBudget::Calibrated`] — a concentration-driven budget
//!   `⌈factor · ln(2/β) / (2·(τ·ρ)²)⌉`: enough samples that the empirical
//!   median's fluctuation is a ρ-fraction of the τ-sized grid cells of
//!   [`crate::rmedian`], so runs disagree with probability ≈ ρ. Note this
//!   matches the `1/(τ²ρ²)` leading factor of [ILPS22] — reproducibility,
//!   not accuracy, dominates the sample cost. Every experiment records
//!   which policy and factor it ran under.

use crate::domain::log_star_of_bits;
use crate::ReproducibleError;

/// Parameters of one reproducible-quantile invocation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReproParams {
    /// Target reproducibility parameter ρ ∈ (0, 1).
    pub rho: f64,
    /// Target accuracy τ ∈ (0, 1/2].
    pub tau: f64,
    /// Target failure probability β ∈ (0, ρ).
    pub beta: f64,
    /// Domain width `d` (so `|X| = 2^d`).
    pub domain_bits: u32,
}

impl ReproParams {
    /// Validates the parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`ReproducibleError::InvalidParameter`] if any parameter is
    /// out of range (τ ∉ (0, 1/2], ρ ∉ (0, 1), or β ∉ (0, ρ)).
    pub fn validate(&self) -> Result<(), ReproducibleError> {
        if !(self.tau > 0.0 && self.tau <= 0.5) {
            return Err(ReproducibleError::InvalidParameter {
                name: "tau",
                value: self.tau,
            });
        }
        if !(self.rho > 0.0 && self.rho < 1.0) {
            return Err(ReproducibleError::InvalidParameter {
                name: "rho",
                value: self.rho,
            });
        }
        if !(self.beta > 0.0 && self.beta < self.rho) {
            return Err(ReproducibleError::InvalidParameter {
                name: "beta",
                value: self.beta,
            });
        }
        Ok(())
    }
}

/// How many samples to hand to rMedian / rQuantile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SampleBudget {
    /// The paper's formulas verbatim (Theorems 2.7 and 4.5), with the
    /// `Õ(·)` constant set to 1. Values saturate at `u64::MAX`.
    Theoretical,
    /// Concentration-calibrated budget scaled by `factor` (must be
    /// positive): `⌈factor · ln(2/β) / (2·(τ·ρ)²)⌉`. With `factor = 1.0`
    /// the empirical-median fluctuation is a ρ-fraction of the grid cell,
    /// targeting disagreement ≈ ρ; smaller factors trade reproducibility
    /// for speed (and are reported as such by the experiments).
    Calibrated {
        /// Multiplier on the concentration bound.
        factor: f64,
    },
}

impl Default for SampleBudget {
    /// The default used by runnable experiments: `Calibrated { 1.0 }`.
    fn default() -> Self {
        SampleBudget::Calibrated { factor: 1.0 }
    }
}

impl SampleBudget {
    /// Sample complexity of one rMedian call ([ILPS22, Theorem 4.2] /
    /// paper Theorem 2.7): `(1/(τ²ρ²)) · (3/τ²)^{log*|X|}` under
    /// `Theoretical`, the DKW budget under `Calibrated`.
    pub fn rmedian_samples(&self, params: &ReproParams) -> u64 {
        match *self {
            SampleBudget::Theoretical => {
                let base = 1.0 / (params.tau * params.tau * params.rho * params.rho);
                let tower = (3.0 / (params.tau * params.tau))
                    .powi(log_star_of_bits(params.domain_bits) as i32);
                saturating_from_f64(base * tower)
            }
            SampleBudget::Calibrated { factor } => {
                concentration_samples(params.tau, params.rho, params.beta, factor)
            }
        }
    }

    /// Sample complexity of one rQuantile call (paper Theorem 4.5):
    /// rMedian at accuracy τ/2 over the one-bit-extended domain, i.e.
    /// `(1/(τ²(ρ−β)²)) · (12/τ²)^{log*|X|+1}` under `Theoretical`.
    pub fn rquantile_samples(&self, params: &ReproParams) -> u64 {
        match *self {
            SampleBudget::Theoretical => {
                let gap = (params.rho - params.beta).max(f64::MIN_POSITIVE);
                let base = 1.0 / (params.tau * params.tau * gap * gap);
                let tower = (12.0 / (params.tau * params.tau))
                    .powi(log_star_of_bits(params.domain_bits) as i32 + 1);
                saturating_from_f64(base * tower)
            }
            SampleBudget::Calibrated { factor } => {
                concentration_samples(params.tau / 2.0, params.rho, params.beta, factor)
            }
        }
    }
}

/// `⌈factor · ln(2/β) / (2·(τρ)²)⌉`, clamped to at least 64 samples.
fn concentration_samples(tau: f64, rho: f64, beta: f64, factor: f64) -> u64 {
    let cell = tau * rho;
    let needed = factor * (2.0 / beta).ln() / (2.0 * cell * cell);
    saturating_from_f64(needed.ceil()).max(64)
}

fn saturating_from_f64(value: f64) -> u64 {
    if !value.is_finite() || value >= u64::MAX as f64 {
        u64::MAX
    } else if value <= 0.0 {
        0
    } else {
        value as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(tau: f64, bits: u32) -> ReproParams {
        ReproParams {
            rho: 0.1,
            tau,
            beta: 0.05,
            domain_bits: bits,
        }
    }

    #[test]
    fn validate_catches_bad_ranges() {
        assert!(params(0.1, 8).validate().is_ok());
        assert!(params(0.0, 8).validate().is_err());
        assert!(params(0.6, 8).validate().is_err());
        let mut p = params(0.1, 8);
        p.beta = 0.2; // β ≥ ρ
        assert!(p.validate().is_err());
        p.beta = 0.0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn theoretical_grows_with_log_star() {
        let budget = SampleBudget::Theoretical;
        let narrow = budget.rmedian_samples(&params(0.2, 4));
        let wide = budget.rmedian_samples(&params(0.2, 64));
        assert!(wide > narrow, "more log* levels → more samples");
    }

    #[test]
    fn theoretical_saturates_at_tiny_tau() {
        let budget = SampleBudget::Theoretical;
        assert_eq!(budget.rquantile_samples(&params(1e-6, 64)), u64::MAX);
    }

    #[test]
    fn theoretical_matches_formula_at_easy_point() {
        // τ = 0.5, ρ = 0.1, bits = 0 → log* = 0 → tower = 1;
        // base = 1/(0.25 · 0.01) = 400.
        let budget = SampleBudget::Theoretical;
        let p = ReproParams {
            rho: 0.1,
            tau: 0.5,
            beta: 0.05,
            domain_bits: 0,
        };
        // 399 or 400 depending on floating-point rounding of 1/(τ²ρ²).
        let samples = budget.rmedian_samples(&p);
        assert!((399..=400).contains(&samples), "got {samples}");
    }

    #[test]
    fn calibrated_scales_with_factor() {
        let small = SampleBudget::Calibrated { factor: 0.1 }.rmedian_samples(&params(0.05, 64));
        let large = SampleBudget::Calibrated { factor: 1.0 }.rmedian_samples(&params(0.05, 64));
        assert!(large > small);
        assert!(small >= 64);
    }

    #[test]
    fn calibrated_is_domain_independent() {
        let a = SampleBudget::default().rmedian_samples(&params(0.05, 8));
        let b = SampleBudget::default().rmedian_samples(&params(0.05, 64));
        assert_eq!(a, b);
    }

    #[test]
    fn quantile_budget_is_at_least_median_budget() {
        // rQuantile runs rMedian at τ/2 → needs at least as many samples.
        for budget in [
            SampleBudget::Theoretical,
            SampleBudget::Calibrated { factor: 1.0 },
        ] {
            let p = params(0.1, 16);
            assert!(budget.rquantile_samples(&p) >= budget.rmedian_samples(&p));
        }
    }
}
