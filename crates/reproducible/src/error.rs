use std::error::Error;
use std::fmt;

/// Errors from the reproducible-statistics algorithms.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ReproducibleError {
    /// The sample was empty.
    EmptySample,
    /// A sample value was outside the declared domain `[0, 2^bits)`.
    ValueOutOfDomain {
        /// The offending value.
        value: u128,
        /// The declared domain bits.
        bits: u32,
    },
    /// The domain exceeds the supported width.
    DomainTooWide {
        /// Requested bits.
        bits: u32,
    },
    /// An accuracy / reproducibility / probability parameter was outside
    /// its valid range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Offending value.
        value: f64,
    },
}

impl fmt::Display for ReproducibleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReproducibleError::EmptySample => write!(f, "sample is empty"),
            ReproducibleError::ValueOutOfDomain { value, bits } => {
                write!(f, "sample value {value} outside domain of {bits} bits")
            }
            ReproducibleError::DomainTooWide { bits } => {
                write!(f, "domain of {bits} bits exceeds the supported maximum")
            }
            ReproducibleError::InvalidParameter { name, value } => {
                write!(f, "parameter {name} = {value} is out of range")
            }
        }
    }
}

impl Error for ReproducibleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        for err in [
            ReproducibleError::EmptySample,
            ReproducibleError::ValueOutOfDomain { value: 9, bits: 3 },
            ReproducibleError::DomainTooWide { bits: 200 },
            ReproducibleError::InvalidParameter {
                name: "tau",
                value: -1.0,
            },
        ] {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ReproducibleError>();
    }
}
