//! Finite ordered domains `[0, 2^d)` and the iterated logarithm.
//!
//! The paper's rQuantile runs over the efficiency-key domain, which is
//! finite but huge (`2^{poly(n)}` in the analysis, `2^64` in this
//! implementation after the fixed-point mapping of Section 4.2); its
//! sample complexity carries a `log* |X|` factor.

use crate::ReproducibleError;

/// Maximum supported domain width in bits.
pub const MAX_DOMAIN_BITS: u32 = 126;

/// A finite ordered domain `{0, 1, …, 2^bits − 1}` of `u128` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Domain {
    bits: u32,
}

impl Domain {
    /// Creates the domain `[0, 2^bits)`.
    ///
    /// # Errors
    ///
    /// Returns [`ReproducibleError::DomainTooWide`] if `bits` exceeds
    /// [`MAX_DOMAIN_BITS`] (two extension bits are reserved for the
    /// quantile reduction's `±∞` padding).
    pub fn new(bits: u32) -> Result<Self, ReproducibleError> {
        if bits > MAX_DOMAIN_BITS {
            return Err(ReproducibleError::DomainTooWide { bits });
        }
        Ok(Domain { bits })
    }

    /// Domain width in bits.
    #[inline]
    pub fn bits(self) -> u32 {
        self.bits
    }

    /// The largest value of the domain, `2^bits − 1`.
    #[inline]
    pub fn max_value(self) -> u128 {
        if self.bits == 0 {
            0
        } else {
            (1u128 << self.bits) - 1
        }
    }

    /// Returns `true` if `value` lies in the domain.
    #[inline]
    pub fn contains(self, value: u128) -> bool {
        value <= self.max_value()
    }

    /// Validates that every sample value lies in the domain.
    pub fn check_sample(self, sample: &[u128]) -> Result<(), ReproducibleError> {
        if sample.is_empty() {
            return Err(ReproducibleError::EmptySample);
        }
        for &value in sample {
            if !self.contains(value) {
                return Err(ReproducibleError::ValueOutOfDomain {
                    value,
                    bits: self.bits,
                });
            }
        }
        Ok(())
    }

    /// The domain extended by one bit with room for `−∞` (encoded as 0)
    /// and `+∞` (encoded as the new maximum); real values shift up by 1.
    pub fn extended(self) -> Domain {
        Domain {
            bits: self.bits + 1,
        }
    }

    /// `log*` of the domain size, as used in the sample-complexity bounds.
    pub fn log_star(self) -> u32 {
        log_star_of_bits(self.bits)
    }
}

impl std::fmt::Display for Domain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[0, 2^{})", self.bits)
    }
}

/// The iterated logarithm: `log* n = 0` if `n ≤ 1`, else
/// `1 + log*(log₂ n)` (Section 2 of the paper).
// lcakp-lint: recursion-bound(log* n) reason="each level replaces n by log2(n); the iterated logarithm of any f64 is at most 5"
pub fn log_star(n: f64) -> u32 {
    if n <= 1.0 {
        0
    } else {
        1 + log_star(n.log2())
    }
}

/// `log*(2^bits)` computed without overflow: one application of `log₂`
/// turns `2^bits` into `bits`.
pub fn log_star_of_bits(bits: u32) -> u32 {
    if bits == 0 {
        0 // 2^0 = 1, log*(1) = 0.
    } else {
        1 + log_star(bits as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_star_values() {
        assert_eq!(log_star(1.0), 0);
        assert_eq!(log_star(2.0), 1);
        assert_eq!(log_star(4.0), 2);
        assert_eq!(log_star(16.0), 3);
        assert_eq!(log_star(65536.0), 4);
    }

    #[test]
    fn log_star_of_bits_matches_direct() {
        assert_eq!(log_star_of_bits(0), 0);
        assert_eq!(log_star_of_bits(1), 1);
        assert_eq!(log_star_of_bits(4), log_star(16.0));
        // log*(2^64) = 1 + log*(64) = 1 + 3 = ... verify against f64 form.
        assert_eq!(log_star_of_bits(64), log_star(2f64.powi(64)));
        assert_eq!(log_star_of_bits(64), 5);
    }

    #[test]
    fn domain_bounds() {
        let domain = Domain::new(3).unwrap();
        assert_eq!(domain.max_value(), 7);
        assert!(domain.contains(7));
        assert!(!domain.contains(8));
        assert!(Domain::new(127).is_err());
    }

    #[test]
    fn zero_bit_domain_is_singleton() {
        let domain = Domain::new(0).unwrap();
        assert_eq!(domain.max_value(), 0);
        assert!(domain.contains(0));
        assert!(!domain.contains(1));
    }

    #[test]
    fn check_sample_validates() {
        let domain = Domain::new(2).unwrap();
        assert!(domain.check_sample(&[0, 3, 2]).is_ok());
        assert_eq!(
            domain.check_sample(&[]),
            Err(ReproducibleError::EmptySample)
        );
        assert!(matches!(
            domain.check_sample(&[4]),
            Err(ReproducibleError::ValueOutOfDomain { value: 4, bits: 2 })
        ));
    }

    #[test]
    fn extended_adds_one_bit() {
        let domain = Domain::new(5).unwrap();
        assert_eq!(domain.extended().bits(), 6);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Domain::new(8).unwrap().to_string(), "[0, 2^8)");
    }
}
