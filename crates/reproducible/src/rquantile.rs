//! Reproducible quantiles — Algorithm 1 of the paper (`rQuantile`),
//! reducing the `p`-quantile to a median by `±∞` padding.
//!
//! Given `n` samples from `D`, the reduction appends `x = (1−p)·n` copies
//! of `−∞` and `y = p·n` copies of `+∞`: the median of the padded multiset
//! sits at rank `n` of `2n`, i.e. at rank `n − x = p·n` of the real
//! values — the `p`-quantile. The paper pads the *distribution* (its
//! `D'`); padding the sample with the exact expected counts is the
//! Rao–Blackwellized version: it has strictly less variance and makes the
//! padding identical across runs, which can only help reproducibility.
//!
//! `−∞` and `+∞` are encoded in the one-bit-extended domain
//! ([`Domain::extended`]): real values shift up by one, `0` encodes `−∞`
//! and the extended maximum encodes `+∞`; outputs are clamped back.

use crate::domain::Domain;
use crate::rmedian::{rmedian, RMedianConfig};
use crate::ReproducibleError;
use lcakp_oracle::Seed;

/// Configuration of a reproducible-quantile call.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RQuantileConfig {
    /// The finite ordered domain the sample lives in.
    pub domain: Domain,
    /// The queried quantile `p ∈ [0, 1]`.
    pub p: f64,
    /// Target accuracy τ ∈ (0, 1/2]: the output `v` satisfies
    /// `Pr[X ≤ v] ≥ p − τ` and `Pr[X ≥ v] ≥ 1 − p − τ` with high
    /// probability (Theorem 4.5).
    pub tau: f64,
}

/// Computes a reproducible τ-approximate `p`-quantile.
///
/// # Errors
///
/// * [`ReproducibleError::InvalidParameter`] if `p ∉ [0, 1]` or
///   `tau ∉ (0, 1/2]`;
/// * [`ReproducibleError::EmptySample`] / `ValueOutOfDomain` as in
///   [`rmedian`];
/// * [`ReproducibleError::DomainTooWide`] if the extended domain exceeds
///   the supported width.
///
/// ```
/// use lcakp_reproducible::{rquantile, Domain, RQuantileConfig, Seed};
/// # fn main() -> Result<(), lcakp_reproducible::ReproducibleError> {
/// let config = RQuantileConfig { domain: Domain::new(16)?, p: 0.9, tau: 0.05 };
/// let seed = Seed::from_entropy_u64(3);
/// let sample: Vec<u128> = (0..20_000).map(|i| (i * 977) % 1000).collect();
/// let q = rquantile(&sample, &config, &seed)?;
/// // ~uniform over [0, 1000): the 0.9-quantile is near 900.
/// assert!((850..960).contains(&(q as i64)));
/// # Ok(())
/// # }
/// ```
pub fn rquantile(
    sample: &[u128],
    config: &RQuantileConfig,
    seed: &Seed,
) -> Result<u128, ReproducibleError> {
    if !(0.0..=1.0).contains(&config.p) {
        return Err(ReproducibleError::InvalidParameter {
            name: "p",
            value: config.p,
        });
    }
    if !(config.tau > 0.0 && config.tau <= 0.5) {
        return Err(ReproducibleError::InvalidParameter {
            name: "tau",
            value: config.tau,
        });
    }
    config.domain.check_sample(sample)?;
    let extended = Domain::new(config.domain.bits() + 1)?;

    let n = sample.len();
    // x = (1−p)·n lows, y = p·n highs (rounded so that x + y = n).
    let lows = (((1.0 - config.p) * n as f64).round() as usize).min(n);
    let highs = n - lows;

    let low_code = 0u128;
    let high_code = extended.max_value();
    // lcakp-lint: allow(D011) reason="2n is the padded-sample size, bounded by the per-query sample budget n_rq"
    let mut padded: Vec<u128> = Vec::with_capacity(2 * n);
    padded.extend(sample.iter().map(|&value| value + 1));
    padded.extend(std::iter::repeat_n(low_code, lows));
    padded.extend(std::iter::repeat_n(high_code, highs));
    // Permute with *shared* randomness: rmedian's internal index-based
    // splits (halves, batches) assume exchangeable order, which a
    // deterministic values-then-padding layout would break; a fixed
    // seed-derived permutation restores it identically across runs.
    {
        use rand::seq::SliceRandom;
        let mut shuffle_rng = seed.derive("rquantile/shuffle", 0).rng();
        padded.shuffle(&mut shuffle_rng);
    }

    let median_config = RMedianConfig {
        domain: extended,
        tau: config.tau / 2.0,
    };
    let out = rmedian(&padded, &median_config, &seed.derive("rquantile/median", 0))?;
    // Decode: clamp −∞ to the domain minimum and +∞ (or any grid point
    // above the real values) to the maximum.
    Ok(out.saturating_sub(1).min(config.domain.max_value()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha12Rng;

    fn config(bits: u32, p: f64, tau: f64) -> RQuantileConfig {
        RQuantileConfig {
            domain: Domain::new(bits).unwrap(),
            p,
            tau,
        }
    }

    #[test]
    fn validates_parameters() {
        let seed = Seed::from_entropy_u64(0);
        assert!(matches!(
            rquantile(&[1], &config(8, 1.5, 0.1), &seed),
            Err(ReproducibleError::InvalidParameter { name: "p", .. })
        ));
        assert!(matches!(
            rquantile(&[1], &config(8, 0.5, 0.9), &seed),
            Err(ReproducibleError::InvalidParameter { name: "tau", .. })
        ));
        assert!(matches!(
            rquantile(&[], &config(8, 0.5, 0.1), &seed),
            Err(ReproducibleError::EmptySample)
        ));
    }

    #[test]
    fn median_case_matches_rmedian_semantics() {
        let seed = Seed::from_entropy_u64(4);
        let mut rng = ChaCha12Rng::seed_from_u64(10);
        let sample: Vec<u128> = (0..30_000).map(|_| rng.gen_range(0..1000u128)).collect();
        let q = rquantile(&sample, &config(16, 0.5, 0.05), &seed).unwrap();
        assert!((430..570).contains(&(q as i64)), "q = {q}");
    }

    #[test]
    fn quantile_accuracy_across_p() {
        let mut rng = ChaCha12Rng::seed_from_u64(20);
        let sample: Vec<u128> = (0..40_000).map(|_| rng.gen_range(0..10_000u128)).collect();
        for (trial, &p) in [0.1, 0.25, 0.5, 0.75, 0.9].iter().enumerate() {
            let seed = Seed::from_entropy_u64(trial as u64);
            let q = rquantile(&sample, &config(16, p, 0.05), &seed).unwrap();
            let cdf = q as f64 / 10_000.0;
            assert!(
                (cdf - p).abs() <= 0.08,
                "p = {p}: got value {q} with cdf ≈ {cdf}"
            );
        }
    }

    #[test]
    fn extreme_quantiles_clamp_into_domain() {
        let seed = Seed::from_entropy_u64(8);
        let sample = vec![500u128; 5000];
        let low = rquantile(&sample, &config(16, 0.0, 0.1), &seed).unwrap();
        let high = rquantile(&sample, &config(16, 1.0, 0.1), &seed).unwrap();
        assert!(low <= 500);
        assert!(high <= Domain::new(16).unwrap().max_value());
    }

    #[test]
    fn point_mass_any_quantile_is_the_point() {
        let seed = Seed::from_entropy_u64(12);
        let sample = vec![321u128; 10_000];
        for p in [0.2, 0.5, 0.8] {
            let q = rquantile(&sample, &config(16, p, 0.05), &seed).unwrap();
            assert_eq!(q, 321, "p = {p}");
        }
    }

    #[test]
    fn reproducibility_on_fresh_samples() {
        let mut agreements = 0;
        let trials = 30;
        for trial in 0..trials {
            let seed = Seed::from_entropy_u64(trial);
            let mut rng_a = ChaCha12Rng::seed_from_u64(5_000 + trial);
            let mut rng_b = ChaCha12Rng::seed_from_u64(6_000 + trial);
            let sample_a: Vec<u128> = (0..60_000)
                .map(|_| rng_a.gen_range(0..(1u128 << 24)))
                .collect();
            let sample_b: Vec<u128> = (0..60_000)
                .map(|_| rng_b.gen_range(0..(1u128 << 24)))
                .collect();
            let out_a = rquantile(&sample_a, &config(24, 0.75, 0.05), &seed).unwrap();
            let out_b = rquantile(&sample_b, &config(24, 0.75, 0.05), &seed).unwrap();
            if out_a == out_b {
                agreements += 1;
            }
        }
        assert!(
            agreements * 4 >= trials * 3,
            "quantile reproducibility too low: {agreements}/{trials}"
        );
    }

    #[test]
    fn deterministic_given_sample_and_seed() {
        let seed = Seed::from_entropy_u64(77);
        let sample: Vec<u128> = (0..5000).map(|i| (i * 31) % 4096).collect();
        let a = rquantile(&sample, &config(12, 0.3, 0.05), &seed).unwrap();
        let b = rquantile(&sample, &config(12, 0.3, 0.05), &seed).unwrap();
        assert_eq!(a, b);
    }
}
