//! A simulated serving fleet: a bounded work queue, N workers, each an
//! independent `LCA-KP` instance holding only the shared seed — the
//! "hugely distributed" deployment of the paper's introduction, with
//! load accounting and a duplicate-consistency check.
//!
//! ```sh
//! cargo run --release --example cluster_serving
//! ```

use lca_knapsack::lca::cluster::{serve_queries, ClusterConfig};
use lca_knapsack::prelude::*;
use lca_knapsack::workloads::{Family, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 300;
    let spec = WorkloadSpec::new(
        Family::LargeDominated {
            heavy: 6,
            heavy_profit: 9_000,
        },
        n,
        7,
    );
    let norm = spec.generate_normalized()?;
    let oracle = InstanceOracle::new(&norm);
    let eps = Epsilon::new(1, 4)?;
    let lca = LcaKp::new(eps)?;
    // Single root seed for this example; every stream below derives from it.
    // lcakp-lint: allow(D005) reason="the example's single root seed constant"
    let root = Seed::from_entropy_u64(0xC1_0531);
    let seed = root.derive("cluster-serving/shared-seed", 0);

    // A realistic query log: every item once, plus a hot set queried
    // five times (by whichever workers get them).
    let mut queries: Vec<ItemId> = (0..n).map(ItemId).collect();
    for _ in 0..5 {
        queries.extend((0..n).step_by(50).map(ItemId));
    }

    let run = serve_queries(
        &lca,
        &oracle,
        &seed,
        &queries,
        ClusterConfig {
            workers: 8,
            queue_depth: 32,
            entropy_root: 0xFEED,
        },
    )?;

    println!("served {} queries across 8 workers", run.answers.len());
    println!("per-worker load: {:?}", run.worker_loads);
    println!(
        "hot-set duplicate agreement (same item, different workers): {:.3}",
        run.duplicate_agreement()
    );

    let selection = run.to_selection(n);
    let audit = selection.audit(norm.as_instance());
    println!("assembled solution: {audit}");
    assert!(audit.feasible, "the fleet must serve one feasible solution");
    println!(
        "total oracle accesses: {} (~{} per query)",
        oracle.stats().total(),
        oracle.stats().total() / run.answers.len() as u64
    );
    Ok(())
}
