//! The deployment the paper's introduction motivates: many independent
//! workers, each holding only the shared seed, answer disjoint slices of
//! queries — and their answers assemble into ONE consistent solution,
//! with no coordination and no shared state.
//!
//! ```sh
//! cargo run --example distributed_consistency
//! ```

use lca_knapsack::lca::consistency::audit_consistency_parallel;
use lca_knapsack::prelude::*;
use lca_knapsack::workloads::{Family, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 240;
    let workers = 8;
    // Large-dominated: at this ε the workers' answers hinge on the
    // coupon-collected large set — non-trivial yet cheap per query.
    let spec = WorkloadSpec::new(
        Family::LargeDominated {
            heavy: 8,
            heavy_profit: 5_000,
        },
        n,
        99,
    );
    let norm = spec.generate_normalized()?;
    let oracle = InstanceOracle::new(&norm);
    let eps = Epsilon::new(1, 4)?;
    let lca = LcaKp::new(eps)?;
    // Single root seed for this example; every stream below derives from it.
    // lcakp-lint: allow(D005) reason="the example's single root seed constant"
    let root = Seed::from_entropy_u64(0xD15C);
    let shared_seed = root.derive("distributed-consistency/shared-seed", 0);

    // Phase 1: workers answer DISJOINT slices; the union must be one
    // feasible solution.
    let slices: Vec<Vec<ItemId>> = (0..workers)
        .map(|worker| {
            (0..n)
                .filter(|index| index % workers == worker)
                .map(ItemId)
                .collect()
        })
        .collect();
    let mut selection = Selection::new(n);
    std::thread::scope(|scope| {
        let handles: Vec<_> = slices
            .iter()
            .enumerate()
            .map(|(worker, slice)| {
                let lca = &lca;
                let oracle = &oracle;
                let seed = &shared_seed;
                scope.spawn(move || {
                    let mut rng = root
                        .derive("distributed-consistency/worker-sampling", worker as u64)
                        .rng();
                    let mut included = Vec::new();
                    for &item in slice {
                        let answer = lca
                            .query(oracle, &mut rng, item, seed)
                            .expect("worker query succeeds");
                        if answer.include {
                            included.push(item);
                        }
                    }
                    included
                })
            })
            .collect();
        for handle in handles {
            for item in handle.join().expect("worker thread") {
                selection.insert(item);
            }
        }
    });
    let audit = selection.audit(norm.as_instance());
    println!("union of {workers} workers' answers: {audit}");
    assert!(audit.feasible, "distributed union must stay feasible");

    // Phase 2: workers answer the SAME slice; Definition 2.3 says they
    // should agree. Measure it.
    let probe: Vec<ItemId> = (0..n).step_by(5).map(ItemId).collect();
    let report = audit_consistency_parallel(&lca, &oracle, &probe, &shared_seed, workers, 777)?;
    println!("overlap agreement across workers: {report}");
    println!(
        "target (Lemma 4.9): mode agreement ≥ 1 − ε = {:.2}",
        1.0 - eps.as_f64()
    );
    Ok(())
}
