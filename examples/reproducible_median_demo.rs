//! The consistency engine in isolation: reproducible vs naive quantiles
//! on fresh samples (Definition 2.5, Theorem 4.5) — the key idea the
//! paper imports from reproducible learning [ILPS22].
//!
//! ```sh
//! cargo run --release --example reproducible_median_demo
//! ```

use lca_knapsack::oracle::Seed;
use lca_knapsack::reproducible::harness::{measure_reproducibility, DiscreteDist};
use lca_knapsack::reproducible::{naive_quantile, rquantile, Domain, RQuantileConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Single root seed for this example; every stream below derives from it.
    // lcakp-lint: allow(D005) reason="the example's single root seed constant"
    let root = Seed::from_entropy_u64(0x4ED1A);
    let dist = DiscreteDist::uniform(1 << 20);
    let tau = 0.05;
    let p = 0.5;
    let samples = 40_000;
    let trials = 20;

    println!(
        "Distribution: uniform over 2^20 values; p = {p}, τ = {tau}, {samples} samples/run.\n"
    );

    let reproducible = measure_reproducibility(
        &dist,
        samples,
        p,
        tau,
        trials,
        root.derive("reproducible-median-demo/rquantile", 0),
        |sample, seed| {
            let config = RQuantileConfig {
                domain: Domain::new(20).expect("20-bit domain fits"),
                p,
                tau,
            };
            rquantile(sample, &config, seed).expect("rquantile runs")
        },
    );
    println!("rQuantile   (shared seed, fresh samples): {reproducible}");

    let naive = measure_reproducibility(
        &dist,
        samples,
        p,
        tau,
        trials,
        root.derive("reproducible-median-demo/naive", 0),
        |sample, _| naive_quantile(sample, p),
    );
    println!("naive quantile (same conditions):         {naive}");

    println!(
        "\nTwo runs of an LCA are two fresh samples: a {:.0}% agreement rate means a\n\
         {:.0}% chance two queries see the same efficiency thresholds — rQuantile is\n\
         what lets LCA-KP answer every query from one common solution (Lemma 4.9).",
        100.0 * reproducible.agreement_rate(),
        100.0 * reproducible.agreement_rate(),
    );
    Ok(())
}
