//! Sweep ε and workload families; report the assembled LCA solution's
//! value against the exact optimum (Theorem 4.1's (1/2, 6ε) bound).
//!
//! ```sh
//! cargo run --release --example approximation_quality
//! ```

use lca_knapsack::lca::solution_audit::assemble_and_audit;
use lca_knapsack::prelude::*;
use lca_knapsack::workloads::standard_suite;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Single root seed for this example; every stream below derives from it.
    // lcakp-lint: allow(D005) reason="the example's single root seed constant"
    let root = Seed::from_entropy_u64(0xA991);
    let n = 150;
    println!(
        "{:<42} {:>6} {:>8} {:>8} {:>7} {:>9} {:>6}",
        "workload", "eps", "OPT", "value", "ratio", "feasible", "bound"
    );
    for spec in standard_suite(n, 2026) {
        let Ok(norm) = spec.generate_normalized() else {
            continue;
        };
        // ε = 1/6: small enough that the small-item cut-off machinery is
        // active (at ε ≥ 1/4 the paper's Algorithm 3 cannot emit one and
        // small-only instances legitimately get the empty solution).
        {
            let (num, den) = (1u64, 6u64);
            let eps = Epsilon::new(num, den)?;
            let lca = LcaKp::new(eps)?.with_budget(
                lca_knapsack::reproducible::SampleBudget::Calibrated { factor: 0.005 },
            );
            let mut rng = root.derive("approximation-quality/sampling", 0).rng();
            let audit = assemble_and_audit(
                &lca,
                &norm,
                &mut rng,
                &root.derive("approximation-quality/shared-seed", 0),
            )?;
            println!(
                "{:<42} {:>6} {:>8} {:>8} {:>7.3} {:>9} {:>6}",
                spec.family.to_string(),
                format!("{num}/{den}"),
                audit.optimum,
                audit.value,
                audit.ratio,
                audit.feasible,
                if audit.satisfies_theorem(eps) {
                    "✓"
                } else {
                    "✗"
                },
            );
        }
    }
    println!("\nbound = value ≥ OPT/2 − 6ε (normalized), Theorem 4.1.");
    Ok(())
}
