//! Quickstart: build an instance, run `LCA-KP` queries, and check that
//! the assembled answers form a feasible near-half-optimal solution.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lca_knapsack::lca::solution_audit::{audit_selection, exact_optimum};
use lca_knapsack::prelude::*;
use lca_knapsack::workloads::{Family, WorkloadSpec};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A 500-item instance: a few heavy items over a sea of small ones.
    let spec = WorkloadSpec::new(
        Family::LargeDominated {
            heavy: 5,
            heavy_profit: 10_000,
        },
        500,
        /* seed */ 42,
    );
    let norm = spec.generate_normalized()?;
    println!("instance: {spec}");

    // 2. The LCA: stateless, seeded. Everything any query ever needs is
    //    (ε, the shared seed, and oracle access).
    let eps = Epsilon::new(1, 4)?;
    let lca = LcaKp::new(eps)?
        .with_budget(lca_knapsack::reproducible::SampleBudget::Calibrated { factor: 0.01 });
    // Single root seed for this example; every stream below derives from it.
    // lcakp-lint: allow(D005) reason="the example's single root seed constant"
    let root = Seed::from_entropy_u64(0x0111C3);
    let shared_seed = root.derive("quickstart/shared-seed", 0);
    let oracle = InstanceOracle::new(&norm);
    let mut sampling_rng = root.derive("quickstart/sampling", 0).rng();

    // 3. Ask about a few items — each query is answered independently,
    //    yet all answers are consistent with one common solution.
    for index in [0usize, 1, 2, 100, 250, 499] {
        let answer = lca.query(&oracle, &mut sampling_rng, ItemId(index), &shared_seed)?;
        println!("  item {index:>3}: {answer}");
    }
    let per_query = oracle.stats().total() / 6;
    println!(
        "accesses per query: ~{per_query} (instance has {} items)",
        norm.len()
    );

    // 4. Assemble the full solution by querying every item, then audit it
    //    against the exact optimum.
    oracle.reset_stats();
    let selection = lca.assemble(&oracle, &mut sampling_rng, &shared_seed)?;
    let optimum = exact_optimum(&norm)?;
    let audit = audit_selection(&norm, &selection, optimum);
    println!("assembled: {audit}");
    assert!(audit.feasible, "Theorem 4.1 feasibility (Lemma 4.7)");
    assert!(
        audit.satisfies_theorem(eps),
        "Theorem 4.1 value bound (Lemma 4.8): {audit}"
    );
    println!("Theorem 4.1 bounds hold: feasible and value ≥ OPT/2 − 6ε.");
    Ok(())
}
