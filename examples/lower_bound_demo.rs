//! A compact tour of the paper's impossibility results (Section 3): why
//! plain query access cannot give a Knapsack LCA, and how weighted
//! sampling dissolves the wall.
//!
//! ```sh
//! cargo run --example lower_bound_demo
//! ```

use lca_knapsack::lowerbounds::approx_reduction::{run_approx_experiment, RatioPair};
use lca_knapsack::lowerbounds::maximal_feasible::run_maximal_experiment;
use lca_knapsack::lowerbounds::or_reduction::{
    run_point_query_experiment, run_weighted_sampling_experiment,
};

fn main() {
    let n = 1024;
    let trials = 3_000;

    println!("Theorem 3.2 — exact Knapsack (answer must hit success 2/3):");
    for budget in [0u64, 64, 256, 341, 1023] {
        let rate = run_point_query_experiment(n, budget, trials, 1);
        println!(
            "  point queries {budget:>5}: success {:.3} {}",
            rate.rate(),
            if rate.clears(2.0 / 3.0) { "✓" } else { "✗" }
        );
    }

    println!("\nTheorem 3.3 — the wall is α-independent (α = 0.02 here):");
    let ratios = RatioPair::new(2, 1, 100);
    for budget in [64u64, 341] {
        let rate = run_approx_experiment(n, ratios, budget, trials, 2);
        println!("  point queries {budget:>5}: success {:.3}", rate.rate());
    }

    println!("\nTheorem 3.4 — even maximal feasibility needs ≥ n/11 queries (4/5 target):");
    for budget in [0u64, (n / 11) as u64, (n / 2) as u64, n as u64] {
        let rate = run_maximal_experiment(n, budget, trials, 3);
        println!(
            "  probes {budget:>5}: consistent-pair rate {:.3} {}",
            rate.rate(),
            if rate.clears(0.8) { "✓" } else { "✗" }
        );
    }

    println!("\nSection 4's escape hatch — weighted sampling on the Theorem 3.2 family:");
    for samples in [1u64, 2, 4, 8] {
        let rate = run_weighted_sampling_experiment(n, samples, trials, 4);
        println!(
            "  weighted samples {samples}: success {:.3} {}",
            rate.rate(),
            if rate.clears(2.0 / 3.0) { "✓" } else { "✗" }
        );
    }
    println!("\nConstant samples beat what Ω(n) point queries cannot — the reason the");
    println!("paper's positive result (Theorem 4.1) assumes the weighted-sampling model.");
}
