//! In-tree stand-in for the `crossbeam` crate: the `channel` module's
//! multi-producer multi-consumer channels, built on `std` mutexes and
//! condvars. Implements the blocking `send`/`recv`/`iter` disconnect
//! semantics the workspace's cluster simulation relies on.

#![forbid(unsafe_code)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::error::Error;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        capacity: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Chan<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// The receiving half; cloneable (consumers race for messages).
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the unsent message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> Error for SendError<T> {}

    /// Error returned by [`Sender::try_send`]; carries the unsent
    /// message.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The bounded channel is at capacity.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// Recovers the message that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(message) | TrySendError::Disconnected(message) => message,
            }
        }

        /// True when the failure was a full queue (backpressure), not a
        /// disconnect.
        pub fn is_full(&self) -> bool {
            matches!(self, TrySendError::Full(_))
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    impl<T: fmt::Debug> Error for TrySendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl Error for RecvError {}

    fn new_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                capacity,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { chan: chan.clone() }, Receiver { chan })
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    /// Creates a bounded channel with the given capacity; `send` blocks
    /// while the queue is full.
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(capacity.max(1)))
    }

    impl<T> Sender<T> {
        /// Sends a message, blocking while the channel is full. Fails if
        /// every receiver has been dropped.
        pub fn send(&self, message: T) -> Result<(), SendError<T>> {
            let mut state = self.chan.state.lock().expect("channel poisoned");
            loop {
                if state.receivers == 0 {
                    return Err(SendError(message));
                }
                let full = state
                    .capacity
                    .is_some_and(|capacity| state.queue.len() >= capacity);
                if !full {
                    state.queue.push_back(message);
                    self.chan.not_empty.notify_one();
                    return Ok(());
                }
                state = self.chan.not_full.wait(state).expect("channel poisoned");
            }
        }

        /// Attempts to send without blocking: fails with
        /// [`TrySendError::Full`] when a bounded channel is at capacity,
        /// [`TrySendError::Disconnected`] when every receiver is gone.
        pub fn try_send(&self, message: T) -> Result<(), TrySendError<T>> {
            let mut state = self.chan.state.lock().expect("channel poisoned");
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(message));
            }
            let full = state
                .capacity
                .is_some_and(|capacity| state.queue.len() >= capacity);
            if full {
                return Err(TrySendError::Full(message));
            }
            state.queue.push_back(message);
            self.chan.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().expect("channel poisoned").senders += 1;
            Sender {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                // Wake blocked receivers so they observe the disconnect.
                self.chan.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking while the channel is empty. Fails
        /// once the channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.chan.state.lock().expect("channel poisoned");
            loop {
                if let Some(message) = state.queue.pop_front() {
                    self.chan.not_full.notify_one();
                    return Ok(message);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.chan.not_empty.wait(state).expect("channel poisoned");
            }
        }

        /// A blocking iterator over received messages; ends when the
        /// channel is empty and disconnected.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().expect("channel poisoned").receivers += 1;
            Receiver {
                chan: self.chan.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.chan.state.lock().expect("channel poisoned");
            state.receivers -= 1;
            if state.receivers == 0 {
                // Wake blocked senders so they observe the disconnect.
                self.chan.not_full.notify_all();
            }
        }
    }

    /// Blocking iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn iter_ends_after_senders_drop() {
            let (tx, rx) = unbounded();
            tx.send(10).unwrap();
            drop(tx);
            let collected: Vec<i32> = rx.iter().collect();
            assert_eq!(collected, vec![10]);
        }

        #[test]
        fn send_fails_without_receivers() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(5), Err(SendError(5)));
        }

        #[test]
        fn bounded_channel_applies_backpressure() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let producer = std::thread::spawn(move || {
                tx.send(3).unwrap(); // blocks until a slot frees up
                drop(tx);
            });
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
            producer.join().unwrap();
        }

        #[test]
        fn try_send_reports_full_and_disconnected() {
            let (tx, rx) = bounded(1);
            assert_eq!(tx.try_send(1), Ok(()));
            let refused = tx.try_send(2).unwrap_err();
            assert!(refused.is_full());
            assert_eq!(refused.into_inner(), 2);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(tx.try_send(3), Ok(()));
            drop(rx);
            assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
        }

        #[test]
        fn multiple_consumers_partition_the_stream() {
            let (tx, rx) = bounded(4);
            let rx2 = rx.clone();
            let consumer_a = std::thread::spawn(move || rx.iter().count());
            let consumer_b = std::thread::spawn(move || rx2.iter().count());
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total = consumer_a.join().unwrap() + consumer_b.join().unwrap();
            assert_eq!(total, 100);
        }
    }
}
