//! In-tree stand-in for `serde_derive`.
//!
//! The workspace annotates data types with `#[derive(Serialize,
//! Deserialize)]` for downstream consumers, but nothing in-tree consumes
//! the generated impls (there is no serializer backend available
//! offline). These derives are therefore *inert*: they accept the same
//! syntax and emit no code, which keeps the annotations compiling until
//! a real serde is available.

use proc_macro::TokenStream;

/// Inert stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Inert stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
