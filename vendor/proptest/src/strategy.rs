//! Value-generation strategies.

use crate::test_runner::TestRunner;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking: `new_value` draws one
/// value from the runner's deterministic RNG.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn new_value(&self, runner: &mut TestRunner) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Keeps only values satisfying `predicate`; a case that cannot find
    /// a satisfying value after a bounded number of redraws is rejected.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        predicate: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            source: self,
            whence,
            predicate,
        }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, runner: &mut TestRunner) -> O {
        (self.f)(self.source.new_value(runner))
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    source: S,
    whence: &'static str,
    predicate: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, runner: &mut TestRunner) -> S::Value {
        for _ in 0..1000 {
            let value = self.source.new_value(runner);
            if (self.predicate)(&value) {
                return value;
            }
        }
        panic!("prop_filter exhausted redraws: {}", self.whence);
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _runner: &mut TestRunner) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng_mut().gen_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, runner: &mut TestRunner) -> $t {
                runner.rng_mut().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.new_value(runner),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRunner;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut runner = TestRunner::deterministic("strategy-test", 0);
        let strategy = (1u64..10, 0i64..=5).prop_map(|(a, b)| a as i64 + b);
        for _ in 0..1000 {
            let value = strategy.new_value(&mut runner);
            assert!((1..=14).contains(&value));
        }
    }

    #[test]
    fn just_yields_the_value() {
        let mut runner = TestRunner::deterministic("just-test", 0);
        assert_eq!(Just(42u8).new_value(&mut runner), 42);
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut runner = TestRunner::deterministic("vec-test", 0);
        let strategy = crate::collection::vec(0u32..10, 2..5);
        for _ in 0..200 {
            let value = strategy.new_value(&mut runner);
            assert!((2..5).contains(&value.len()));
            assert!(value.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn btree_set_strategy_generates_sets() {
        let mut runner = TestRunner::deterministic("set-test", 0);
        let strategy = crate::collection::btree_set(0usize..100, 0..20);
        let value = strategy.new_value(&mut runner);
        assert!(value.len() < 20);
    }

    #[test]
    fn filter_redraws() {
        let mut runner = TestRunner::deterministic("filter-test", 0);
        let strategy = (0u32..100).prop_filter("even", |value| value % 2 == 0);
        for _ in 0..100 {
            assert_eq!(strategy.new_value(&mut runner) % 2, 0);
        }
    }
}
