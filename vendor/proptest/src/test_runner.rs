//! Deterministic case runner backing the `proptest!` macro.

use rand_chacha::ChaCha12Rng;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Outcome of one generated case other than plain success.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case failed an assertion; the test panics with this message.
    Fail(String),
    /// The case was rejected by `prop_assume!` and is redrawn without
    /// counting toward the configured case total.
    Reject(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    /// Builds a rejection.
    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(msg) => write!(f, "test case failed: {msg}"),
            TestCaseError::Reject(msg) => write!(f, "test case rejected: {msg}"),
        }
    }
}

/// Per-test state handed to strategies; wraps the deterministic RNG.
#[derive(Debug)]
pub struct TestRunner {
    rng: ChaCha12Rng,
}

impl TestRunner {
    /// Runner seeded from a test name and case index, so every case is
    /// replayable across runs and platforms.
    pub fn deterministic(name: &str, case: u64) -> Self {
        use rand::SeedableRng;
        TestRunner {
            rng: ChaCha12Rng::seed_from_u64(fnv1a(name) ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// The RNG strategies draw from.
    pub fn rng_mut(&mut self) -> &mut ChaCha12Rng {
        &mut self.rng
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in s.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Drives one property test: draws cases until `config.cases` are
/// accepted, redrawing rejected ones up to a bounded global limit, and
/// panics with the generated inputs on the first failure.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRunner) -> (String, Result<(), TestCaseError>),
{
    let max_rejects = u64::from(config.cases) * 16 + 1024;
    let mut accepted: u32 = 0;
    let mut rejected: u64 = 0;
    let mut draw: u64 = 0;
    while accepted < config.cases {
        let mut runner = TestRunner::deterministic(name, draw);
        draw += 1;
        let (inputs, result) = case(&mut runner);
        match result {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > max_rejects {
                    panic!(
                        "proptest `{name}`: too many rejected cases ({rejected}) \
                         before reaching {} accepted",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed at case {} (draw {}):\n  inputs: {}\n  {}",
                    accepted,
                    draw - 1,
                    inputs,
                    msg
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_configured_number_of_cases() {
        let mut count = 0u32;
        run_cases(ProptestConfig::with_cases(17), "count-test", |_runner| {
            count += 1;
            (String::new(), Ok(()))
        });
        assert_eq!(count, 17);
    }

    #[test]
    fn rejects_are_redrawn_without_counting() {
        let mut accepted = 0u32;
        let mut seen = 0u32;
        run_cases(ProptestConfig::with_cases(5), "reject-test", |_runner| {
            seen += 1;
            if seen.is_multiple_of(2) {
                (String::new(), Err(TestCaseError::reject("odd")))
            } else {
                accepted += 1;
                (String::new(), Ok(()))
            }
        });
        assert_eq!(accepted, 5);
        assert!(seen > 5);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failure_panics_with_inputs() {
        run_cases(ProptestConfig::with_cases(10), "fail-test", |_runner| {
            ("x = 3".to_string(), Err(TestCaseError::fail("boom")))
        });
    }

    #[test]
    fn deterministic_runner_is_replayable() {
        use rand::RngCore;
        let mut a = TestRunner::deterministic("same", 7);
        let mut b = TestRunner::deterministic("same", 7);
        let mut c = TestRunner::deterministic("other", 7);
        assert_eq!(a.rng_mut().next_u64(), b.rng_mut().next_u64());
        let _ = c.rng_mut().next_u64();
    }
}
