//! In-tree stand-in for `proptest`, implementing the subset this
//! workspace uses: range and tuple strategies, `prop_map`, collection
//! strategies (`vec`, `btree_set`), the `proptest!` macro with
//! `#![proptest_config(...)]`, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Cases are generated from a deterministic ChaCha stream keyed by the
//! test name and case number, so failures are reproducible run-to-run.
//! Unlike real proptest there is **no shrinking**: a failing case reports
//! the generated inputs verbatim.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`proptest::collection::vec`, `::btree_set`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            let len = runner.rng_mut().gen_range(self.size.clone());
            (0..len).map(|_| self.element.new_value(runner)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>` targeting a size in `size`
    /// (duplicates collapse, so the realized size may be smaller).
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates sets whose elements come from `element`.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn new_value(&self, runner: &mut TestRunner) -> Self::Value {
            let target = runner.rng_mut().gen_range(self.size.clone());
            (0..target)
                .map(|_| self.element.new_value(runner))
                .collect()
        }
    }
}

/// The glob-import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "{}: `{:?}` != `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "{}: `{:?}` == `{:?}`",
            format!($($fmt)+),
            left,
            right
        );
    }};
}

/// Rejects the current case (it is redrawn, not counted) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    };
}

/// Declares property tests. Accepts an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases($config, stringify!($name), |__runner| {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), __runner);)+
                let mut __inputs = ::std::string::String::new();
                $(
                    __inputs.push_str(stringify!($arg));
                    __inputs.push_str(" = ");
                    __inputs.push_str(&format!("{:?}; ", &$arg));
                )+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                (__inputs, __result)
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}
