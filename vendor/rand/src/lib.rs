//! In-tree, dependency-free stand-in for the `rand` crate (0.8 API).
//!
//! The build environment for this workspace has no access to crates.io,
//! so the external `rand` crate can never be downloaded. This crate
//! reimplements exactly the API surface the workspace uses — [`RngCore`],
//! [`SeedableRng`], the [`Rng`] extension trait (`gen`, `gen_range`,
//! `gen_bool`, `fill`), [`seq::SliceRandom`] and [`thread_rng`] — with
//! unbiased integer sampling (rejection method) and 53-bit float
//! generation, matching the statistical contracts the test suite relies
//! on. Stream *values* are not required to match upstream `rand`: the
//! workspace pins reproducibility to its own `Seed` type, which only
//! requires determinism within this implementation.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw 32/64-bit output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Helper: fill a byte slice from 64-bit draws.
pub(crate) fn fill_bytes_via_next<R: RngCore + ?Sized>(rng: &mut R, dest: &mut [u8]) {
    let mut chunks = dest.chunks_exact_mut(8);
    for chunk in &mut chunks {
        chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
    }
    let tail = chunks.into_remainder();
    if !tail.is_empty() {
        let word = rng.next_u64().to_le_bytes();
        tail.copy_from_slice(&word[..tail.len()]);
    }
}

/// `splitmix64` — used to expand a `u64` into a full seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Seed material (a fixed-size byte array in every implementation).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from seed bytes.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into full seed material deterministically.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut s).to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&word[..len]);
        }
        Self::from_seed(seed)
    }
}

/// Uniform draw from `[0, span)` for `span > 0`, by rejection (unbiased).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // 2^64 mod span; accept draws below 2^64 - rem so every residue is
    // equally likely.
    let rem = (u64::MAX % span + 1) % span;
    let limit = u64::MAX - rem;
    loop {
        let draw = rng.next_u64();
        if rem == 0 || draw <= limit {
            return draw % span;
        }
    }
}

/// Uniform draw from `[0, span)` for 128-bit spans, by rejection.
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span <= u64::MAX as u128 {
        return uniform_u64_below(rng, span as u64) as u128;
    }
    let rem = (u128::MAX % span + 1) % span;
    let limit = u128::MAX - rem;
    loop {
        let draw = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if rem == 0 || draw <= limit {
            return draw % span;
        }
    }
}

/// A range that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range. Panics if it is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range_64 {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                let offset = uniform_u64_below(rng, span);
                (self.start as u64).wrapping_add(offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = uniform_u64_below(rng, span + 1);
                (start as u64).wrapping_add(offset) as $t
            }
        }
    )*};
}

impl_int_range_64!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_int_range_128 {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = uniform_u128_below(rng, span);
                (self.start as u128).wrapping_add(offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as u128).wrapping_sub(start as u128);
                if span == u128::MAX {
                    return (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) as $t;
                }
                let offset = uniform_u128_below(rng, span + 1);
                (start as u128).wrapping_add(offset) as $t
            }
        }
    )*};
}

impl_int_range_128!(u128, i128);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let unit = distributions::unit_f64(rng);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        let unit = distributions::unit_f64(rng);
        start + unit * (end - start)
    }
}

/// Value distributions for [`Rng::gen`].
pub mod distributions {
    use super::RngCore;

    /// A distribution over values of type `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution: uniform over all values for integers,
    /// uniform in `[0, 1)` for floats.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    macro_rules! impl_standard_int {
        ($($t:ty => $method:ident),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.$method() as $t
                }
            }
        )*};
    }

    impl_standard_int!(
        u8 => next_u32, u16 => next_u32, u32 => next_u32,
        i8 => next_u32, i16 => next_u32, i32 => next_u32,
        u64 => next_u64, i64 => next_u64, usize => next_u64, isize => next_u64
    );

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
        }
    }

    impl Distribution<i128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
            Distribution::<u128>::sample(self, rng) as i128
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            unit_f64(rng)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u32() & 1 == 1
        }
    }
}

/// Types whose buffers an RNG can fill in place (for [`Rng::fill`]).
pub trait Fill {
    /// Fills `self` with random data.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// Convenience extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Draws a uniform value from `range`. Panics on empty ranges.
    fn gen_range<T, B>(&mut self, range: B) -> T
    where
        B: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Extension methods on slices: shuffling and random choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// Process-global generators.
pub mod rngs {
    use super::{fill_bytes_via_next, RngCore};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};

    static THREAD_RNG_COUNTER: AtomicU64 = AtomicU64::new(0);

    /// A cheap per-call generator seeded from the clock and a counter —
    /// for convenience entropy only (doc examples, ad-hoc sampling), not
    /// reproducibility. The workspace's reproducible channel is `Seed`.
    #[derive(Debug, Clone)]
    pub struct ThreadRng {
        state: u64,
    }

    impl ThreadRng {
        pub(crate) fn new() -> Self {
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x5eed);
            let salt = THREAD_RNG_COUNTER.fetch_add(1, Ordering::Relaxed);
            ThreadRng {
                state: nanos ^ salt.rotate_left(32) ^ 0x9e37_79b9_7f4a_7c15,
            }
        }
    }

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // splitmix64 stream.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            fill_bytes_via_next(self, dest);
        }
    }

    /// Stand-in for `rand::rngs::OsRng`: a fresh clock-seeded stream per
    /// call site, matching the real type's unit-struct ergonomics. This
    /// build has no OS entropy hookup; use it for convenience only.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct OsRng;

    impl RngCore for OsRng {
        fn next_u32(&mut self) -> u32 {
            ThreadRng::new().next_u32()
        }

        fn next_u64(&mut self) -> u64 {
            ThreadRng::new().next_u64()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            ThreadRng::new().fill_bytes(dest);
        }
    }
}

/// Returns a convenience generator seeded from the clock.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng::new()
}

/// Common imports.
pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone)]
    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            fill_bytes_via_next(self, dest);
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let x = rng.gen_range(0u128..(1u128 << 90));
            assert!(x < 1u128 << 90);
        }
    }

    #[test]
    fn gen_range_covers_small_ranges_uniformly() {
        let mut rng = Counter(1);
        let mut counts = [0u64; 4];
        for _ in 0..40_000 {
            counts[rng.gen_range(0usize..4)] += 1;
        }
        for &count in &counts {
            assert!((count as i64 - 10_000).abs() < 800, "{counts:?}");
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_fills_all_bytes() {
        let mut rng = Counter(9);
        let mut bytes = [0u8; 32];
        rng.fill(&mut bytes);
        assert!(bytes.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = Counter(11);
        let mut data: Vec<u32> = (0..100).collect();
        data.shuffle(&mut rng);
        let mut sorted = data.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn thread_rng_runs() {
        let mut rng = thread_rng();
        let _ = rng.next_u64();
    }
}
