//! In-tree stand-in for `serde`.
//!
//! Offline builds cannot fetch the real serde; this crate provides the
//! `Serialize`/`Deserialize` names (trait and derive-macro namespaces)
//! so type annotations keep compiling. The derives are inert — no
//! serialization backend exists in this workspace.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
