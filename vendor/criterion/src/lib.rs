//! In-tree stand-in for `criterion`.
//!
//! Offline builds cannot fetch the real criterion; this crate keeps the
//! `harness = false` bench targets compiling and runnable. Each
//! benchmark runs a short warm-up followed by a fixed number of timed
//! samples and prints mean wall-clock time per iteration. There is no
//! statistical analysis, plotting, or baseline comparison.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's historical name.
pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, 10, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Runs a benchmark identified by `id` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Ends the group. (No-op; provided for API compatibility.)
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Id composed of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Id composed of a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    // Warm-up: one sample of a single iteration, discarded.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);

    let mut total = Duration::ZERO;
    let mut iters_total: u64 = 0;
    for _ in 0..samples {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        total += bencher.elapsed;
        iters_total += bencher.iters;
    }
    let mean_nanos = if iters_total == 0 {
        0.0
    } else {
        total.as_nanos() as f64 / iters_total as f64
    };
    println!(
        "bench {label}: mean {:.1} ns/iter over {iters_total} iters",
        mean_nanos
    );
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
///
/// Accepts and ignores harness flags such as `--bench` / `--test` so
/// `cargo bench` and `cargo test --benches` both work.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(3);
        let mut count = 0u32;
        group.bench_function("counting", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        group.bench_with_input(BenchmarkId::new("with-input", 7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(count >= 3);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").label, "p");
    }
}
