//! In-tree stand-in for `rand_chacha`: a ChaCha12-based RNG.
//!
//! Implements the genuine ChaCha stream cipher core (12 rounds, 64-bit
//! block counter) so the generator is portable and statistically strong.
//! The exact output stream is deterministic across platforms and builds —
//! which is the property the workspace's `Seed` reproducibility story
//! requires — but is not guaranteed to be byte-identical to the upstream
//! `rand_chacha` crate's stream.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 12;

/// A cryptographically strong, portable RNG: ChaCha with 12 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha12Rng {
    /// Key words (fixed after seeding).
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the ChaCha state).
    counter: u64,
    /// Buffered keystream block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "refill".
    index: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        let mut state: [u32; 16] = [
            CONSTANTS[0],
            CONSTANTS[1],
            CONSTANTS[2],
            CONSTANTS[3],
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, &init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(init);
        }
        self.buffer = state;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        ChaCha12Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let low = self.next_u32() as u64;
        let high = self.next_u32() as u64;
        (high << 32) | low
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let tail = chunks.into_remainder();
        if !tail.is_empty() {
            let word = self.next_u32().to_le_bytes();
            tail.copy_from_slice(&word[..tail.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_seeds_give_identical_streams() {
        let mut a = ChaCha12Rng::from_seed([7u8; 32]);
        let mut b = ChaCha12Rng::from_seed([7u8; 32]);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha12Rng::from_seed([1u8; 32]);
        let mut b = ChaCha12Rng::from_seed([2u8; 32]);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same == 0, "streams should diverge immediately");
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let mut a = ChaCha12Rng::seed_from_u64(42);
        let mut b = ChaCha12Rng::seed_from_u64(42);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn output_is_well_distributed() {
        // Crude monobit check over 64k words.
        let mut rng = ChaCha12Rng::seed_from_u64(0);
        let ones: u32 = (0..65_536).map(|_| rng.next_u32().count_ones()).sum();
        let expected = 65_536u64 * 16;
        assert!(
            ((ones as i64) - expected as i64).abs() < 40_000,
            "bit bias: {ones}"
        );
    }

    #[test]
    fn fill_bytes_handles_odd_lengths() {
        let mut rng = ChaCha12Rng::seed_from_u64(1);
        let mut buffer = [0u8; 13];
        rng.fill_bytes(&mut buffer);
        assert!(buffer.iter().any(|&b| b != 0));
    }

    #[test]
    fn clone_preserves_position() {
        let mut rng = ChaCha12Rng::seed_from_u64(5);
        let _ = rng.next_u32();
        let mut copy = rng.clone();
        assert_eq!(rng.next_u64(), copy.next_u64());
    }
}
