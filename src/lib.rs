//! # lca-knapsack
//!
//! A Rust reproduction of **“Local Computation Algorithms for Knapsack:
//! impossibility results, and how to avoid them”** (Canonne, Li, Umboh;
//! PODC 2025).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`knapsack`] — the Knapsack substrate: instances, exact solvers,
//!   classical approximation algorithms, and the IKY12 reduced-instance
//!   machinery;
//! * [`oracle`] — the access models of the LCA setting: point queries,
//!   profit-proportional weighted sampling, and the shared random seed;
//! * [`reproducible`] — reproducible median and quantiles
//!   (Impagliazzo–Lei–Pitassi–Sorrell 2022), the consistency engine;
//! * [`lca`] — the paper's contribution: the `LCA-KP` algorithm
//!   (Theorem 4.1) and the LCA framework around it;
//! * [`lowerbounds`] — the hard instance families and adversary harnesses
//!   realizing Theorems 3.2–3.4;
//! * [`workloads`] — deterministic instance generators used by the test
//!   and experiment suites.
//!
//! ## Quickstart
//!
//! ```
//! use lca_knapsack::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Build an instance and its normalized view.
//! let instance = Instance::from_pairs((1..=200u64).map(|i| (1 + i % 13, 1 + i % 7)), 60)?;
//! let norm = NormalizedInstance::new(instance)?;
//!
//! // One LCA, shared seed: every query is answered statelessly but all
//! // answers are consistent with a single (1/2, 6ε)-approximate solution.
//! let eps = Epsilon::new(1, 4)?;
//! let lca = LcaKp::new(eps)?;
//! let seed = Seed::from_entropy_u64(42);
//! let oracle = InstanceOracle::new(&norm);
//! let mut sampler_rng = rand::rngs::OsRng;
//!
//! let answer = lca.query(&oracle, &mut sampler_rng, ItemId(3), &seed)?;
//! println!("item 3 in solution: {}", answer.include);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use lcakp_core as lca;
pub use lcakp_knapsack as knapsack;
pub use lcakp_lowerbounds as lowerbounds;
pub use lcakp_oracle as oracle;
pub use lcakp_reproducible as reproducible;
pub use lcakp_workloads as workloads;

/// One-stop imports for the common workflow.
pub mod prelude {
    pub use lcakp_core::{ConsistencyReport, KnapsackLca, LcaAnswer, LcaKp};
    pub use lcakp_knapsack::iky::Epsilon;
    pub use lcakp_knapsack::{
        Instance, Item, ItemId, KnapsackError, NormalizedInstance, Selection,
    };
    pub use lcakp_oracle::{InstanceOracle, ItemOracle, Seed, WeightedSampler};
}
