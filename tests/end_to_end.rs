//! Cross-crate end-to-end tests: the full `LCA-KP` pipeline (Theorem 4.1)
//! over the workload suite — feasibility, approximation, and consistency
//! measured through the public facade API only.

use lca_knapsack::lca::consistency::audit_consistency;
use lca_knapsack::lca::solution_audit::{assemble_and_audit, audit_selection, exact_optimum};
use lca_knapsack::prelude::*;
use lca_knapsack::reproducible::SampleBudget;
use lca_knapsack::workloads::{standard_suite, Family, WorkloadSpec};

fn default_lca(eps: Epsilon) -> LcaKp {
    LcaKp::new(eps)
        .expect("lca builds")
        .with_budget(SampleBudget::Calibrated { factor: 0.02 })
}

/// Lemma 4.7 through the public API: one rule, materialized, must fit.
#[test]
fn materialized_rules_are_feasible_across_the_suite() {
    let eps = Epsilon::new(1, 4).unwrap();
    let lca = default_lca(eps);
    for spec in standard_suite(200, 41) {
        let norm = spec.generate_normalized().unwrap();
        let oracle = InstanceOracle::new(&norm);
        for trial in 0..3u64 {
            let mut rng = Seed::from_entropy_u64(100 + trial).rng();
            let rule = lca
                .build_rule(&oracle, &mut rng, &Seed::from_entropy_u64(trial))
                .unwrap();
            let selection = rule.materialize(&norm);
            assert!(
                selection.is_feasible(norm.as_instance()),
                "{spec} trial {trial}: infeasible rule {rule}"
            );
        }
    }
}

/// Theorem 4.1 value bound through per-item assembly (the honest path).
#[test]
fn assembled_solutions_meet_the_half_six_eps_bound() {
    let eps = Epsilon::new(1, 3).unwrap();
    let lca = default_lca(eps);
    for spec in standard_suite(100, 42) {
        let norm = spec.generate_normalized().unwrap();
        let mut rng = Seed::from_entropy_u64(7).rng();
        let audit = assemble_and_audit(&lca, &norm, &mut rng, &Seed::from_entropy_u64(8)).unwrap();
        assert!(audit.feasible, "{spec}: {audit}");
        assert!(
            audit.satisfies_theorem(eps),
            "{spec}: value bound violated: {audit}"
        );
    }
}

/// Lemma 4.9 through the public API: mode agreement should be high (we
/// assert a conservative floor well above chance; E6 reports exact
/// rates).
#[test]
fn lca_kp_runs_agree_on_a_common_solution() {
    let eps = Epsilon::new(1, 4).unwrap();
    // Moderate budget with a relaxed ρ for a clear consistency signal at
    // test speed; E6 sweeps the full grid.
    let lca = LcaKp::new(eps)
        .expect("lca builds")
        .with_profile(lca_knapsack::lca::ReproProfile::Relaxed {
            rho: 0.2,
            beta: 0.05,
        })
        .with_budget(SampleBudget::Calibrated { factor: 0.1 });
    let spec = WorkloadSpec::new(Family::SmallDominated, 120, 43);
    let norm = spec.generate_normalized().unwrap();
    let oracle = InstanceOracle::new(&norm);
    let items: Vec<ItemId> = (0..norm.len()).step_by(12).map(ItemId).collect();
    let report = audit_consistency(
        &lca,
        &oracle,
        &items,
        &Seed::from_entropy_u64(44),
        8,
        0xC0FFEE,
    )
    .unwrap();
    assert!(
        report.mean_item_agreement >= 0.8,
        "per-item agreement collapsed: {report}"
    );
    assert!(
        report.pairwise_agreement >= 0.2,
        "no dominant solution: {report}"
    );
}

/// The whole pipeline is a deterministic function of (instance, sampling
/// stream, seed): replaying both streams reproduces the assembled
/// selection exactly.
#[test]
fn replay_determinism_through_the_facade() {
    let eps = Epsilon::new(1, 4).unwrap();
    let lca = default_lca(eps);
    let spec = WorkloadSpec::new(
        Family::GarbageMix {
            garbage_percent: 20,
        },
        150,
        45,
    );
    let norm = spec.generate_normalized().unwrap();
    let run = || {
        let oracle = InstanceOracle::new(&norm);
        let mut rng = Seed::from_entropy_u64(9).rng();
        lca.assemble(&oracle, &mut rng, &Seed::from_entropy_u64(10))
            .unwrap()
    };
    assert_eq!(run(), run());
}

/// Baselines bracket LCA-KP: EmptyLca is feasible-but-worthless,
/// FullScanLca is 1/2-approximate at Ω(n) cost.
#[test]
fn baselines_bracket_the_algorithm() {
    let spec = WorkloadSpec::new(Family::WeaklyCorrelated { range: 500 }, 120, 46);
    let norm = spec.generate_normalized().unwrap();
    let optimum = exact_optimum(&norm).unwrap();

    let oracle = InstanceOracle::new(&norm);
    let mut rng = Seed::from_entropy_u64(11).rng();
    let seed = Seed::from_entropy_u64(12);

    let empty = lca_knapsack_empty(&oracle, &mut rng, &seed);
    let empty_audit = audit_selection(&norm, &empty, optimum);
    assert!(empty_audit.feasible);
    assert_eq!(empty_audit.value, 0);

    oracle.reset_stats();
    let full = lca_knapsack_fullscan(&oracle, &mut rng, &seed);
    let full_audit = audit_selection(&norm, &full, optimum);
    assert!(full_audit.feasible);
    assert!(2 * full_audit.value >= optimum);
    // n queries per item-query → n² total for assembly.
    assert_eq!(
        oracle.stats().point_queries,
        (norm.len() * norm.len()) as u64
    );
}

fn lca_knapsack_empty(
    oracle: &InstanceOracle<'_>,
    rng: &mut impl rand::Rng,
    seed: &Seed,
) -> Selection {
    lca_knapsack::lca::EmptyLca::new()
        .assemble(oracle, rng, seed)
        .unwrap()
}

fn lca_knapsack_fullscan(
    oracle: &InstanceOracle<'_>,
    rng: &mut impl rand::Rng,
    seed: &Seed,
) -> Selection {
    lca_knapsack::lca::FullScanLca::new()
        .assemble(oracle, rng, seed)
        .unwrap()
}
