//! Property-based cross-checks of the Knapsack substrate through the
//! facade: exact solvers agree; approximation guarantees hold on random
//! instances; the IKY reduction respects Lemma 4.4's band.

use lca_knapsack::knapsack::iky::{
    exact_eps, tilde_optimum, verify_eps, Epsilon, Partition, TildeInstance, MU_SHIFT,
};
use lca_knapsack::knapsack::{solvers, Instance, NormalizedInstance};
use proptest::prelude::*;

fn arb_instance(max_items: usize) -> impl Strategy<Value = Instance> {
    (
        proptest::collection::vec((0u64..200, 0u64..100), 1..max_items),
        0u64..400,
    )
        .prop_map(|(pairs, capacity)| Instance::from_pairs(pairs, capacity).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All four exact solvers compute the same optimum.
    #[test]
    fn exact_solvers_agree(instance in arb_instance(18)) {
        let dp_w = solvers::dp_by_weight(&instance).unwrap().value;
        let dp_p = solvers::dp_by_profit(&instance).unwrap().value;
        let bb = solvers::branch_and_bound(&instance).unwrap().value;
        let brute = solvers::brute_force(&instance).unwrap().value;
        let mitm = solvers::meet_in_the_middle(&instance).unwrap().value;
        prop_assert_eq!(dp_w, dp_p);
        prop_assert_eq!(dp_w, bb);
        prop_assert_eq!(dp_w, brute);
        prop_assert_eq!(dp_w, mitm);
    }

    /// Modified greedy is a genuine 1/2-approximation ([WS11, Ex 3.1]).
    #[test]
    fn modified_greedy_is_half_approx(instance in arb_instance(18)) {
        let optimum = solvers::dp_by_weight(&instance).unwrap().value;
        let greedy = solvers::modified_greedy(&instance);
        prop_assert!(greedy.selection.is_feasible(&instance));
        prop_assert!(2 * greedy.value >= optimum,
            "greedy {} vs OPT {optimum}", greedy.value);
    }

    /// FPTAS achieves (1 − ε)·OPT ([WS11, §3.2]).
    #[test]
    fn fptas_achieves_one_minus_eps(instance in arb_instance(15)) {
        let optimum = solvers::dp_by_weight(&instance).unwrap().value;
        let eps = Epsilon::new(1, 4).unwrap();
        let outcome = solvers::fptas(&instance, eps).unwrap();
        prop_assert!(outcome.selection.is_feasible(&instance));
        // value ≥ (1 − ε)·OPT, in exact integer arithmetic: 4·v ≥ 3·OPT.
        prop_assert!(4 * outcome.value >= 3 * optimum,
            "fptas {} vs OPT {optimum}", outcome.value);
    }

    /// The fractional relaxation upper-bounds the 0/1 optimum, and the
    /// prefix greedy lower-bounds it.
    #[test]
    fn relaxation_sandwich(instance in arb_instance(16)) {
        let optimum = solvers::dp_by_weight(&instance).unwrap().value;
        let upper = solvers::fractional::fractional_upper_bound(&instance);
        let lower = solvers::greedy_prefix(&instance).outcome.value;
        prop_assert!(upper >= optimum);
        prop_assert!(lower <= optimum);
    }

    /// Lemma 4.4 with the exact EPS: |OPT(Ĩ) − OPT(I)| ≤ 6ε normalized.
    #[test]
    fn itilde_tracks_the_optimum(instance in arb_instance(20)) {
        prop_assume!(instance.total_profit() > 0 && instance.total_weight() > 0);
        let norm = NormalizedInstance::new(instance).unwrap();
        let eps = Epsilon::new(1, 4).unwrap();
        let partition = Partition::compute(&norm, eps);
        let seq = exact_eps(&norm, eps, &partition);
        let tilde = TildeInstance::build_from_instance(&norm, eps, partition.large(), &seq);
        let Some(opt_mu) = tilde_optimum(&tilde) else { return Ok(()); };
        let tilde_opt = opt_mu as f64 / (1u128 << MU_SHIFT) as f64;
        let optimum = solvers::dp_by_weight(norm.as_instance()).unwrap().value;
        let normalized_opt = optimum as f64 / norm.total_profit() as f64;
        prop_assert!((tilde_opt - normalized_opt).abs() <= 6.0 * eps.as_f64() + 1e-9,
            "OPT(Ĩ) = {tilde_opt} vs OPT = {normalized_opt}");
        // The verification report never panics and is internally coherent.
        let verification = verify_eps(&norm, eps, &partition, &seq);
        prop_assert_eq!(verification.buckets.len(), seq.len() + 1);
    }

    /// Selections audited through the facade agree with raw arithmetic.
    #[test]
    fn audit_arithmetic(instance in arb_instance(12)) {
        let outcome = solvers::modified_greedy(&instance);
        let audit = outcome.selection.audit(&instance);
        prop_assert_eq!(audit.value, outcome.value);
        prop_assert_eq!(audit.feasible, audit.weight <= instance.capacity());
    }
}
