//! Integration tests for the workspace extensions: the simulated serving
//! cluster (the paper's distributed deployment story) and the
//! average-case rejection-sampling access mode (Section 5 / [BCPR24]).

use lca_knapsack::lca::cluster::{serve_queries, ClusterConfig};
use lca_knapsack::lca::solution_audit::{audit_selection, exact_optimum};
use lca_knapsack::oracle::RejectionSamplingOracle;
use lca_knapsack::prelude::*;
use lca_knapsack::reproducible::SampleBudget;
use lca_knapsack::workloads::{Family, WorkloadSpec};

fn fast_lca(eps: Epsilon) -> LcaKp {
    LcaKp::new(eps)
        .unwrap()
        .with_budget(SampleBudget::Calibrated { factor: 0.01 })
}

/// An 8-worker fleet serving every item produces one feasible solution
/// whose quality matches a sequential assembly.
#[test]
fn cluster_fleet_serves_a_feasible_solution() {
    let n = 120;
    let spec = WorkloadSpec::new(
        Family::LargeDominated {
            heavy: 4,
            heavy_profit: 6_000,
        },
        n,
        21,
    );
    let norm = spec.generate_normalized().unwrap();
    let oracle = InstanceOracle::new(&norm);
    let eps = Epsilon::new(1, 3).unwrap();
    let lca = fast_lca(eps);
    let seed = Seed::from_entropy_u64(22);
    let queries: Vec<ItemId> = (0..n).map(ItemId).collect();
    let run = serve_queries(
        &lca,
        &oracle,
        &seed,
        &queries,
        ClusterConfig {
            workers: 8,
            queue_depth: 16,
            entropy_root: 23,
        },
    )
    .unwrap();
    assert_eq!(run.answers.len(), n);
    let selection = run.to_selection(n);
    assert!(selection.is_feasible(norm.as_instance()));

    let optimum = exact_optimum(&norm).unwrap();
    let audit = audit_selection(&norm, &selection, optimum);
    assert!(
        audit.satisfies_theorem(eps),
        "fleet solution misses the bound: {audit}"
    );
}

/// LCA-KP runs unmodified on top of rejection sampling, and on a benign
/// instance the per-sample point-query overhead is a small constant.
#[test]
fn rejection_sampling_powers_lca_kp_on_benign_instances() {
    let n = 150;
    let spec = WorkloadSpec::new(Family::Uncorrelated { range: 50 }, n, 31);
    let norm = spec.generate_normalized().unwrap();
    let inner = InstanceOracle::new(&norm);
    let p_cap = norm
        .as_instance()
        .items()
        .iter()
        .map(|item| item.profit)
        .max()
        .unwrap();
    let oracle = RejectionSamplingOracle::new(&inner, p_cap, 10_000);
    assert!(
        oracle.expected_cost_per_sample() < 4.0,
        "benign instance should have O(1) rejection overhead"
    );

    let eps = Epsilon::new(1, 3).unwrap();
    let lca = fast_lca(eps);
    let mut rng = Seed::from_entropy_u64(32).rng();
    let selection = lca
        .assemble(&oracle, &mut rng, &Seed::from_entropy_u64(33))
        .unwrap();
    assert!(selection.is_feasible(norm.as_instance()));
    let optimum = exact_optimum(&norm).unwrap();
    let audit = audit_selection(&norm, &selection, optimum);
    assert!(audit.satisfies_theorem(eps), "{audit}");

    // Overhead accounting: point queries ≈ overhead × weighted budget.
    let stats = oracle.stats();
    assert!(stats.point_queries > 0);
}

/// The needle structure that defeats point queries (Theorem 3.2's
/// intuition) shows up as a large rejection overhead, not a silent
/// failure.
#[test]
fn rejection_sampling_overhead_explodes_on_needles() {
    let mut pairs = vec![(1u64, 1u64); 199];
    pairs.push((50_000, 1));
    let norm = lca_knapsack::knapsack::NormalizedInstance::new(
        lca_knapsack::knapsack::Instance::from_pairs(pairs, 100).unwrap(),
    )
    .unwrap();
    let inner = InstanceOracle::new(&norm);
    let oracle = RejectionSamplingOracle::new(&inner, 50_000, 100_000);
    assert!(
        oracle.expected_cost_per_sample() > 100.0,
        "needle overhead should be two orders above benign: {}",
        oracle.expected_cost_per_sample()
    );
}
