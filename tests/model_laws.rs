//! The LCA model laws as cross-crate tests: statelessness,
//! parallelizability (Definition 2.3), query-order obliviousness
//! (Definition 2.4), and the two-randomness-channel discipline
//! (Definition 2.5).

use lca_knapsack::lca::consistency::{audit_consistency_parallel, check_order_obliviousness};
use lca_knapsack::prelude::*;
use lca_knapsack::reproducible::SampleBudget;
use lca_knapsack::workloads::{Family, WorkloadSpec};

fn norm(seed: u64) -> lca_knapsack::knapsack::NormalizedInstance {
    WorkloadSpec::new(Family::SmallDominated, 100, seed)
        .generate_normalized()
        .unwrap()
}

fn strong_lca(eps: Epsilon) -> LcaKp {
    LcaKp::new(eps)
        .expect("lca builds")
        .with_profile(lca_knapsack::lca::ReproProfile::Relaxed {
            rho: 0.2,
            beta: 0.05,
        })
        .with_budget(SampleBudget::Calibrated { factor: 0.1 })
}

/// Identical seed AND identical sampling stream → identical answers,
/// regardless of which queries were asked before (statelessness).
#[test]
fn statelessness_answers_do_not_depend_on_history() {
    let eps = Epsilon::new(1, 2).unwrap();
    let lca = strong_lca(eps);
    let norm = norm(1);
    let oracle = InstanceOracle::new(&norm);
    let seed = Seed::from_entropy_u64(5);

    // Path A: ask 0, 1, 2, then 50.
    let answer_after_history = {
        for index in 0..3usize {
            let mut rng = Seed::from_entropy_u64(100 + index as u64).rng();
            let _ = lca.query(&oracle, &mut rng, ItemId(index), &seed).unwrap();
        }
        let mut rng = Seed::from_entropy_u64(999).rng();
        lca.query(&oracle, &mut rng, ItemId(50), &seed).unwrap()
    };
    // Path B: ask 50 cold, same per-query entropy.
    let answer_cold = {
        let mut rng = Seed::from_entropy_u64(999).rng();
        lca.query(&oracle, &mut rng, ItemId(50), &seed).unwrap()
    };
    assert_eq!(answer_after_history, answer_cold);
}

/// Definition 2.4 for the deterministic baselines (exact), and for
/// LCA-KP under replayed per-item entropy.
#[test]
fn query_order_obliviousness() {
    let norm = norm(2);
    let oracle = InstanceOracle::new(&norm);
    let seed = Seed::from_entropy_u64(6);
    assert!(
        check_order_obliviousness(&lca_knapsack::lca::FullScanLca::new(), &oracle, &seed, 7)
            .unwrap()
    );
    assert!(
        check_order_obliviousness(&lca_knapsack::lca::EmptyLca::new(), &oracle, &seed, 7).unwrap()
    );
    let eps = Epsilon::new(1, 2).unwrap();
    assert!(
        check_order_obliviousness(&strong_lca(eps), &oracle, &seed, 7).unwrap(),
        "LCA-KP with replayed per-item entropy must be order-oblivious"
    );
}

/// Definition 2.3: concurrent instances over one shared oracle terminate
/// and produce a coherent report (exact agreement for the deterministic
/// baseline).
#[test]
fn parallelizability_over_a_shared_oracle() {
    let norm = norm(3);
    let oracle = InstanceOracle::new(&norm);
    let items: Vec<ItemId> = (0..norm.len()).step_by(7).map(ItemId).collect();
    let report = audit_consistency_parallel(
        &lca_knapsack::lca::FullScanLca::new(),
        &oracle,
        &items,
        &Seed::from_entropy_u64(8),
        6,
        11,
    )
    .unwrap();
    assert_eq!(report.pairwise_agreement, 1.0);
    assert_eq!(report.distinct_solutions, 1);
}

/// The seed is the only shared-randomness channel: different seeds are
/// allowed to (and on small-item instances essentially always do) pick
/// different efficiency thresholds, while the same seed pins them.
#[test]
fn seed_is_the_consistency_channel() {
    let eps = Epsilon::new(1, 2).unwrap();
    let lca = strong_lca(eps);
    let norm = norm(4);
    let oracle = InstanceOracle::new(&norm);

    let rule_with = |seed_value: u64, entropy: u64| {
        let mut rng = Seed::from_entropy_u64(entropy).rng();
        lca.build_rule(&oracle, &mut rng, &Seed::from_entropy_u64(seed_value))
            .unwrap()
    };
    // Same seed, different sampling entropy: rules should usually agree —
    // check that at least 6 of 8 entropy streams give the modal rule.
    let rules: Vec<_> = (0..8)
        .map(|entropy| rule_with(42, 1000 + entropy))
        .collect();
    let modal = rules
        .iter()
        .map(|rule| rules.iter().filter(|other| *other == rule).count())
        .max()
        .unwrap();
    assert!(
        modal >= 6,
        "same-seed rules fragmented: modal count {modal}/8"
    );
}

/// Oracles are access-metered: an LCA query must touch the instance only
/// through counted channels.
#[test]
fn all_access_is_metered() {
    let eps = Epsilon::new(1, 3).unwrap();
    let lca = LcaKp::new(eps)
        .expect("lca builds")
        .with_budget(SampleBudget::Calibrated { factor: 0.02 });
    let norm = norm(5);
    let oracle = InstanceOracle::new(&norm);
    let mut rng = Seed::from_entropy_u64(21).rng();
    let before = oracle.stats();
    let _ = lca
        .query(&oracle, &mut rng, ItemId(0), &Seed::from_entropy_u64(22))
        .unwrap();
    let delta = oracle.stats().since(before);
    assert!(delta.weighted_samples > 0, "LCA-KP must sample");
    assert_eq!(
        delta.point_queries, 1,
        "exactly one point query per item query"
    );
}
