//! The paper's full landscape as one integration test file: the three
//! impossibility walls (Theorems 3.2–3.4) and the weighted-sampling
//! escape (Theorem 4.1), measured side by side through the facade.

use lca_knapsack::lowerbounds::approx_reduction::{run_approx_experiment, RatioPair};
use lca_knapsack::lowerbounds::maximal_feasible::run_maximal_experiment;
use lca_knapsack::lowerbounds::or_reduction::{
    run_point_query_experiment, run_weighted_sampling_experiment, OrReduction,
};
use lca_knapsack::prelude::*;

/// Theorem 3.2's shape: success is ~1/2 + q/(2(n−1)) — verified at three
/// points of the curve.
#[test]
fn theorem_3_2_success_curve() {
    let n = 800;
    let trials = 3_000;
    for (budget, expected) in [(0u64, 0.5f64), (200, 0.625), (799, 1.0)] {
        let rate = run_point_query_experiment(n, budget, trials, 32);
        assert!(
            (rate.rate() - expected).abs() < 0.05,
            "budget {budget}: got {}, expected ≈ {expected}",
            rate.rate()
        );
    }
}

/// Theorem 3.3: tightening α (even to 0.02) does not weaken the wall.
#[test]
fn theorem_3_3_is_alpha_independent() {
    let n = 600;
    let budget = 60;
    let trials = 3_000;
    let mut rates = Vec::new();
    for (alpha_num, beta_num) in [(99u64, 98u64), (2, 1)] {
        let ratios = RatioPair::new(alpha_num, beta_num, 100);
        rates.push(run_approx_experiment(n, ratios, budget, trials, 33).rate());
    }
    assert!(
        (rates[0] - rates[1]).abs() < 0.05,
        "α should not matter: {rates:?}"
    );
    assert!(rates.iter().all(|&rate| rate < 2.0 / 3.0));
}

/// Theorem 3.4: below n/11 probes the two-query consistency stays below
/// 4/5; with full probing it recovers.
#[test]
fn theorem_3_4_four_fifths_wall() {
    let n = 660;
    let trials = 4_000;
    let below = run_maximal_experiment(n, (n / 11) as u64, trials, 34);
    assert!(below.rate() < 0.8, "wall breached: {below}");
    let above = run_maximal_experiment(n, n as u64, trials, 34);
    assert!(above.rate() > 0.95, "full probing failed: {above}");
}

/// The hinge of the paper: the exact task that is Ω(n) under point
/// queries is O(1) under weighted sampling.
#[test]
fn weighted_sampling_dissolves_the_wall() {
    let n = 4_096;
    let trials = 3_000;
    let point = run_point_query_experiment(n, 8, trials, 35);
    let weighted = run_weighted_sampling_experiment(n, 8, trials, 35);
    assert!(point.rate() < 0.55, "{point}");
    assert!(weighted.rate() > 0.95, "{weighted}");
}

/// The reduction instance itself is faithful: optimal membership of the
/// special item encodes OR(x) exactly (Figure 1).
#[test]
fn figure_1_reduction_is_exact() {
    for n in [2usize, 3, 17, 64] {
        assert!(OrReduction::all_zero(n).special_in_optimum());
        for position in 0..n - 1 {
            assert!(!OrReduction::single_one(n, position).special_in_optimum());
        }
    }
}

/// And Theorem 4.1 lives on the right side of the wall: a real LCA query
/// over a million-item instance touches a vanishing fraction of it.
#[test]
fn theorem_4_1_is_sublinear_in_practice() {
    use lca_knapsack::reproducible::SampleBudget;
    use lca_knapsack::workloads::{Family, WorkloadSpec};

    let n = 1_000_000;
    let spec = WorkloadSpec::new(Family::SmallDominated, n, 36);
    let norm = spec.generate_normalized().unwrap();
    let oracle = InstanceOracle::new(&norm);
    let eps = Epsilon::new(1, 4).unwrap();
    let lca = LcaKp::new(eps)
        .expect("lca builds")
        .with_budget(SampleBudget::Calibrated { factor: 0.01 });
    let mut rng = Seed::from_entropy_u64(1).rng();
    let answer = lca
        .query(&oracle, &mut rng, ItemId(7), &Seed::from_entropy_u64(2))
        .unwrap();
    let _ = answer.include;
    let accesses = oracle.stats().total();
    assert!(
        accesses < (n / 10) as u64,
        "query cost {accesses} is not sublinear in n = {n}"
    );
}
